// Good-machine checkpoints — simulate the fault-free circuit once, reuse it
// everywhere (the parallel-path answer to the paper's central observation
// that the good circuit's work should be shared, not repeated).
//
// The concurrent engine already shares the good machine across all faulty
// circuits *within* one engine; a sharded run used to throw that away by
// re-simulating the good circuit once per shard. A GoodMachineCheckpoint
// captures one complete good-machine run of a test sequence as a compact
// settle-by-settle, phase-by-phase trace:
//
//   * per unit-delay phase: the member lists of every vicinity the good
//     circuit evaluated (what faulty-circuit trigger collection scans), and
//     the committed state changes (node, new value) — coercion already
//     applied, so replay is a pure data walk with no solver work;
//   * per settle (one per input setting, plus the initial all-X settle):
//     the span of phases it ran, so replay keeps the global phase counter —
//     and therefore oscillation-coercion timing — bit-aligned with an
//     unsharded run;
//   * per pattern: the good machine's logical node-evaluation count (so a
//     merged sharded result can report exactly the same deterministic work
//     counter as a jobs=1 run) and the good state of every node.
//
// Per-pattern good states are not stored as full snapshots: the change trace
// *is* the snapshot store, copy-on-write style — all patterns share the one
// change arena and goodStateAfterPattern() materializes a snapshot by
// folding the deltas up to that pattern's last settle.
//
// Storage has two modes, chosen at record() time by `budgetBytes`:
//
//   * **In-memory (budget 0).** The trace lives in flat arenas (one vector
//     per kind, settle blocks concatenated in run order) — ~14 MB for
//     RAM256's 1447 patterns.
//   * **Spilled (budget > 0).** The trace grows linearly with good-machine
//     activity, so million-pattern sequences cannot hold it in RAM. Each
//     settle block is streamed to an unlinked temp file as it is recorded
//     and replayed back through a sliding in-memory window (an LRU cache of
//     decoded settle blocks) sized so that the checkpoint's resident
//     footprint — reported by memoryBytes() — stays within the budget.
//     Only the small per-settle index and the per-pattern arrays stay
//     resident, so the budget must exceed that fixed floor (plus one settle
//     block per concurrently replaying engine); within it, eviction and
//     re-reads are invisible: replay is bit-identical to the in-memory mode.
//
// All replay access goes through a CheckpointReader cursor (one per
// replaying engine); the trace itself is immutable after record() and safe
// to share across concurrently replaying engines. CheckpointStore
// (src/core/checkpoint_store.hpp) caches recorded checkpoints across
// engines and rows, keyed on (network identity, sequence fingerprint).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "patterns/pattern.hpp"
#include "switch/network.hpp"
#include "switch/vicinity.hpp"

namespace fmossim {

struct FsimOptions;
class CheckpointReader;

/// One recorded good-machine run of a test sequence (see file comment).
/// Immutable after record(); safe to share across concurrently replaying
/// engines (the spilled-mode window cache is internally synchronized).
/// Move-only: a spilled checkpoint owns its backing file.
class GoodMachineCheckpoint {
 public:
  /// One committed good-circuit state change (post-coercion; the new value
  /// always differs from the node's pre-phase state).
  struct Change {
    NodeId node;
    State value;
  };
  /// Member span of one good vicinity evaluation (into the members arena) —
  /// what faulty-circuit trigger collection scans during replay.
  struct VicinitySpan {
    std::uint32_t memberOff;
    std::uint32_t memberCount;
  };
  /// One unit-delay phase of good-circuit activity. Offsets index the
  /// vicinity/change arenas: global in the in-memory mode, block-local in a
  /// spilled settle block — CheckpointReader hides the difference.
  struct Phase {
    std::uint32_t vicOff, vicCount;        ///< span into the vicinity table
    std::uint32_t changeOff, changeCount;  ///< span into the change arena
  };
  /// One settle (input setting application): its span of phases, plus the
  /// input-node changes applied immediately before it (empty for settle 0).
  /// Settle 0 is the initial all-X network evaluation; settle k >= 1 is the
  /// k-th input setting of the sequence, in run order. Input changes bypass
  /// the phase commit path in the engine, so snapshot folding needs them
  /// recorded separately.
  struct Settle {
    std::uint32_t phaseOff, phaseCount;
    std::uint32_t inputOff, inputCount;  ///< span into the input-change arena
  };
  /// One settle's trace data in decodable form: what the recorder buffers
  /// while the settle runs, what a spilled file block deserializes into
  /// (offsets local to the block).
  struct SettleBlock {
    std::vector<Phase> phases;
    std::vector<VicinitySpan> vics;
    std::vector<NodeId> members;
    std::vector<Change> changes;
    std::vector<Change> inputChanges;

    /// Heap footprint of the block's payload (window accounting).
    std::size_t bytes() const;
  };

  GoodMachineCheckpoint();
  GoodMachineCheckpoint(GoodMachineCheckpoint&&) noexcept;
  GoodMachineCheckpoint& operator=(GoodMachineCheckpoint&&) noexcept;
  ~GoodMachineCheckpoint();

  /// Records the good machine of `net` over `seq`: runs a fault-free
  /// concurrent simulation with `options` (detection knobs are irrelevant;
  /// options.sim controls settle limits) and captures the trace.
  /// Deterministic: identical inputs produce identical checkpoints (and
  /// bit-identical replays regardless of `budgetBytes`).
  ///
  /// `budgetBytes` > 0 spills the settle-block trace to an unlinked temp
  /// file in `spillDir` (empty = the system temp directory) as it records,
  /// keeping memoryBytes() within the budget; 0 keeps the whole trace in
  /// RAM. See the file comment for the budget's fixed floor.
  static GoodMachineCheckpoint record(const Network& net,
                                      const TestSequence& seq,
                                      const FsimOptions& options,
                                      std::size_t budgetBytes = 0,
                                      const std::string& spillDir = {});

  /// Content fingerprint of a test sequence (FNV-1a over patterns, settings
  /// and outputs). Replay asserts the sequence it runs matches the one
  /// recorded; CheckpointStore keys its cache on this.
  static std::uint64_t fingerprint(const TestSequence& seq);

  // --- trace accessors (in-memory mode only) ---------------------------------
  //
  // Replay must go through a CheckpointReader, which works in both storage
  // modes; these direct accessors exist for tests and tools that inspect an
  // in-memory trace and assert !spilled().

  /// Number of recorded settles (1 + total input settings of the sequence).
  std::uint32_t numSettles() const {
    return static_cast<std::uint32_t>(settles_.size());
  }
  /// The i-th settle's phase span.
  const Settle& settle(std::uint32_t i) const { return settles_[i]; }
  /// Phase by global index (settle.phaseOff + k). In-memory mode only.
  const Phase& phase(std::uint32_t i) const { return phases_[i]; }
  /// The vicinities the good circuit evaluated in a phase, in evaluation
  /// order (replay must preserve it: faulty-circuit seed order depends on
  /// it). In-memory mode only.
  std::span<const VicinitySpan> vicinities(const Phase& p) const {
    return {vics_.data() + p.vicOff, p.vicCount};
  }
  /// Member nodes of one recorded vicinity. In-memory mode only.
  std::span<const NodeId> members(const VicinitySpan& v) const {
    return {members_.data() + v.memberOff, v.memberCount};
  }
  /// The state changes the good circuit committed in a phase. In-memory
  /// mode only.
  std::span<const Change> changes(const Phase& p) const {
    return {changes_.data() + p.changeOff, p.changeCount};
  }
  /// The input-node changes applied just before a settle. In-memory mode
  /// only.
  std::span<const Change> inputChanges(const Settle& s) const {
    return {inputChanges_.data() + s.inputOff, s.inputCount};
  }

  // --- whole-run data --------------------------------------------------------

  /// Fingerprint of the recorded sequence (see fingerprint()).
  std::uint64_t seqFingerprint() const { return seqFingerprint_; }
  /// Number of nodes of the recorded network.
  std::uint32_t numNodes() const {
    return static_cast<std::uint32_t>(finalGoodStates_.size());
  }
  /// Number of patterns of the recorded sequence.
  std::uint32_t numPatterns() const {
    return static_cast<std::uint32_t>(perPatternGoodEvals_.size());
  }
  /// Good state of every node after the last pattern (what an early-exiting
  /// replay reports as finalGoodStates).
  const std::vector<State>& finalGoodStates() const { return finalGoodStates_; }
  /// Good-machine logical node evaluations per pattern — the work a replay
  /// avoids; merged into sharded results so their deterministic work counter
  /// equals a jobs=1 run's exactly.
  const std::vector<std::uint64_t>& perPatternGoodEvals() const {
    return perPatternGoodEvals_;
  }
  /// Total good-machine node evaluations over the sequence (excluding the
  /// initial settle, matching FaultSimResult::totalNodeEvals semantics).
  std::uint64_t totalGoodEvals() const { return totalGoodEvals_; }
  /// Wall-clock seconds the recording run took (merged into the recording
  /// run's aggregate CPU time; diagnostics).
  double recordSeconds() const { return recordSeconds_; }

  /// Materializes the good state of every node after pattern `p` by folding
  /// the change trace up to that pattern's last settle (the copy-on-write
  /// read path; O(nodes + changes up to p)). Works in both storage modes.
  std::vector<State> goodStateAfterPattern(std::uint32_t p) const;

  /// True when the settle-block trace lives in the temp-file backing store
  /// and replays through the sliding window.
  bool spilled() const { return spill_ != nullptr; }
  /// The record-time memory budget (0 = unbounded).
  std::size_t budgetBytes() const { return budgetBytes_; }

  /// Resident heap footprint in bytes: the whole trace in in-memory mode;
  /// the fixed per-settle/per-pattern index plus the current window of
  /// decoded settle blocks in spilled mode. The budget enforcement hook —
  /// stays <= budgetBytes() whenever the budget exceeds the fixed floor
  /// plus one settle block per concurrently replaying engine.
  std::size_t memoryBytes() const;

 private:
  friend class CheckpointRecorder;
  friend class CheckpointReader;

  struct SpillState;

  std::size_t fixedBytes() const;
  /// Loads settle block `i` through the window cache (spilled mode).
  std::shared_ptr<const SettleBlock> loadBlock(std::uint32_t i) const;

  std::vector<Settle> settles_;  ///< resident in both modes (the index)
  // In-memory mode: the flat trace arenas (settle blocks concatenated in
  // run order; offsets global). Empty in spilled mode.
  std::vector<Phase> phases_;
  std::vector<VicinitySpan> vics_;
  std::vector<NodeId> members_;
  std::vector<Change> changes_;
  std::vector<Change> inputChanges_;

  std::vector<State> initialGoodStates_;  ///< after the initial all-X settle
  std::vector<State> finalGoodStates_;
  std::vector<std::uint64_t> perPatternGoodEvals_;
  /// One past the last settle index of each pattern (snapshot folding).
  std::vector<std::uint32_t> patternSettleEnd_;
  std::uint64_t totalGoodEvals_ = 0;
  std::uint64_t seqFingerprint_ = 0;
  double recordSeconds_ = 0.0;

  std::size_t budgetBytes_ = 0;
  std::unique_ptr<SpillState> spill_;  ///< non-null in spilled mode
};

/// Forward-only replay cursor over a checkpoint's settle blocks — the one
/// access path that works in both storage modes. Each replaying engine owns
/// one; in spilled mode the cursor pins its current settle's decoded block
/// (keeping returned spans valid until the next enterSettle) and the shared
/// window cache behind it slides forward with the replay.
class CheckpointReader {
 public:
  /// Binds to `ck` (must outlive the reader) without loading anything.
  explicit CheckpointReader(const GoodMachineCheckpoint& ck);
  ~CheckpointReader();

  /// Positions the cursor on settle `i` (asserted in range). Sequential
  /// forward access is the fast path; any order is correct.
  void enterSettle(std::uint32_t i);

  /// Number of phases of the current settle.
  std::uint32_t phaseCount() const { return phaseCount_; }
  /// The vicinities of phase `k` of the current settle, in evaluation order.
  std::span<const GoodMachineCheckpoint::VicinitySpan> vicinities(
      std::uint32_t k) const {
    const GoodMachineCheckpoint::Phase& p = phases_[k];
    return {vicBase_ + p.vicOff, p.vicCount};
  }
  /// Member nodes of one vicinity of the current settle.
  std::span<const NodeId> members(
      const GoodMachineCheckpoint::VicinitySpan& v) const {
    return {memberBase_ + v.memberOff, v.memberCount};
  }
  /// The state changes committed in phase `k` of the current settle.
  std::span<const GoodMachineCheckpoint::Change> changes(
      std::uint32_t k) const {
    const GoodMachineCheckpoint::Phase& p = phases_[k];
    return {changeBase_ + p.changeOff, p.changeCount};
  }
  /// The input-node changes applied just before the current settle.
  std::span<const GoodMachineCheckpoint::Change> inputChanges() const {
    return {inputs_, inputCount_};
  }

 private:
  const GoodMachineCheckpoint* ck_;
  /// Pin on the current settle's decoded block (spilled mode only).
  std::shared_ptr<const GoodMachineCheckpoint::SettleBlock> pin_;
  const GoodMachineCheckpoint::Phase* phases_ = nullptr;
  const GoodMachineCheckpoint::VicinitySpan* vicBase_ = nullptr;
  const NodeId* memberBase_ = nullptr;
  const GoodMachineCheckpoint::Change* changeBase_ = nullptr;
  const GoodMachineCheckpoint::Change* inputs_ = nullptr;
  std::uint32_t phaseCount_ = 0;
  std::uint32_t inputCount_ = 0;
};

/// Recording sink the concurrent engine drives during a checkpoint-recording
/// run. Buffers the current settle's trace in a SettleBlock; a completed
/// block is appended to the in-memory arenas or streamed to the spill file
/// when the budget demands it. One beginSettle() per settleAll(), one
/// beginPhase() per unit-delay phase, then the phase's good vicinities and
/// commits in engine order; finish() flushes the last block.
class CheckpointRecorder {
 public:
  /// Records into `into` (must outlive the recorder; its spill mode is
  /// fixed before recording starts).
  explicit CheckpointRecorder(GoodMachineCheckpoint& into) : ck_(into) {}

  /// Records one input-node assignment (old != new); attached to the settle
  /// the engine runs next.
  void inputChange(NodeId n, State v);
  /// Opens the next settle block (flushing the previous one).
  void beginSettle();
  /// Opens the next phase of the current settle.
  void beginPhase();
  /// Records one good-vicinity evaluation (member list only).
  void goodVicinity(const Vicinity& vic);
  /// Records one committed good-circuit change (post-coercion, old != new).
  void goodCommit(NodeId n, State v);
  /// Flushes the final settle block; recording is complete.
  void finish();

 private:
  void flushSettle();

  GoodMachineCheckpoint& ck_;
  GoodMachineCheckpoint::SettleBlock pending_;
  /// Input changes seen since the last beginSettle (owned by the next one).
  std::vector<GoodMachineCheckpoint::Change> pendingInputs_;
  bool settleOpen_ = false;
  // Running global totals (the flushed arenas' sizes in in-memory mode);
  // the settle index's phase/input offsets are derived from these in both
  // modes.
  std::uint64_t totalPhases_ = 0;
  std::uint64_t totalInputs_ = 0;
};

}  // namespace fmossim
