// The paper's serial-simulation time estimator (footnote **, p. 717):
//
//   "All serial fault simulation times were estimated by summing over all
//    faults the number of patterns required to detect the fault times the
//    average time to simulate the good circuit for 1 pattern."
//
// Undetected faults cost the full sequence length. We reproduce the same
// methodology (Figures 1-3 and the scaling study all use it) and validate it
// against true serial runs in the tests.
#pragma once

#include <cstdint>
#include <vector>

namespace fmossim {

struct SerialEstimate {
  double seconds = 0.0;          ///< estimated serial CPU time
  std::uint64_t patternUnits = 0;  ///< sum over faults of patterns simulated
  double nodeEvals = 0.0;        ///< same estimate in deterministic work units
};

/// Computes the paper's estimate from per-fault detection pattern indices
/// (-1 = undetected), the sequence length, and the measured good-circuit
/// per-pattern cost.
SerialEstimate estimateSerial(const std::vector<std::int32_t>& detectedAtPattern,
                              std::uint32_t numPatterns,
                              double goodSecondsPerPattern,
                              double goodNodeEvalsPerPattern);

}  // namespace fmossim
