#include "core/estimator.hpp"

namespace fmossim {

SerialEstimate estimateSerial(const std::vector<std::int32_t>& detectedAtPattern,
                              std::uint32_t numPatterns,
                              double goodSecondsPerPattern,
                              double goodNodeEvalsPerPattern) {
  SerialEstimate est;
  for (const std::int32_t at : detectedAtPattern) {
    // Detection at pattern p means p+1 patterns were simulated; undetected
    // faults run the whole sequence.
    const std::uint64_t patterns =
        at < 0 ? numPatterns : static_cast<std::uint64_t>(at) + 1;
    est.patternUnits += patterns;
  }
  est.seconds = double(est.patternUnits) * goodSecondsPerPattern;
  est.nodeEvals = double(est.patternUnits) * goodNodeEvalsPerPattern;
  return est;
}

}  // namespace fmossim
