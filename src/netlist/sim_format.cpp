#include "netlist/sim_format.hpp"

#include <fstream>
#include <sstream>

#include "switch/builder.hpp"
#include "util/strings.hpp"

namespace fmossim {

namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& msg) {
  throw Error(format("sim netlist line %zu: %s", lineNo, msg.c_str()));
}

/// Strict unsigned decimal parse: every character must be a digit, so that
/// "2x" or "3.5" is an error rather than silently truncated by stoi.
unsigned parseUint(std::string_view tok, std::size_t lineNo, const char* what) {
  if (tok.empty()) fail(lineNo, format("empty %s", what));
  unsigned value = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') {
      fail(lineNo, format("invalid %s '%s'", what, std::string(tok).c_str()));
    }
    if (value > 100000u) {
      fail(lineNo, format("%s '%s' out of range", what, std::string(tok).c_str()));
    }
    value = value * 10 + static_cast<unsigned>(c - '0');
  }
  return value;
}

}  // namespace

Network parseSimNetlist(const std::string& text) {
  NetworkBuilder b;

  // Two passes: declarations first (inputs, node sizes), then devices, so
  // that device lines can reference nodes declared later in the file.
  std::istringstream declStream(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(declStream, line)) {
    ++lineNo;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '|' || trimmed[0] == '#') continue;
    const auto tok = splitWhitespace(trimmed);
    const std::string kind = toUpper(tok[0]);
    if (kind == "INPUT") {
      if (tok.size() < 2) fail(lineNo, "input requires at least one name");
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const std::string name(tok[i]);
        if (b.hasNode(name)) fail(lineNo, "duplicate declaration of '" + name + "'");
        b.addInput(name);
      }
    } else if (kind == "NODE") {
      if (tok.size() != 3) fail(lineNo, "node requires <name> <size>");
      const std::string name(tok[1]);
      if (b.hasNode(name)) fail(lineNo, "duplicate declaration of '" + name + "'");
      const unsigned size = parseUint(tok[2], lineNo, "node size");
      if (size < 1) fail(lineNo, "node size must be >= 1");
      try {
        b.addNode(name, size);
      } catch (const Error& e) {
        fail(lineNo, e.what());
      }
    }
  }

  // Implicit rails.
  if (!b.hasNode("Vdd")) b.addInput("Vdd");
  if (!b.hasNode("Gnd")) b.addInput("Gnd");

  std::istringstream devStream(text);
  lineNo = 0;
  std::size_t devices = 0;
  while (std::getline(devStream, line)) {
    ++lineNo;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '|' || trimmed[0] == '#') continue;
    const auto tok = splitWhitespace(trimmed);
    const std::string kind = toUpper(tok[0]);
    if (kind == "INPUT" || kind == "NODE") continue;
    if (kind != "N" && kind != "P" && kind != "D" && kind != "E") {
      fail(lineNo, "unknown directive '" + std::string(tok[0]) + "'");
    }
    if (tok.size() != 4 && tok.size() != 5) {
      fail(lineNo, "transistor requires <gate> <source> <drain> [strength]");
    }
    const TransistorType type = transistorTypeFromName(std::string(1, static_cast<char>(
        std::tolower(static_cast<unsigned char>(kind[0])))));
    unsigned strength = (type == TransistorType::DType) ? 1u : 2u;
    if (tok.size() == 5) {
      strength = parseUint(tok[4], lineNo, "strength");
    }
    const NodeId gate = b.getOrAddNode(std::string(tok[1]));
    const NodeId source = b.getOrAddNode(std::string(tok[2]));
    const NodeId drain = b.getOrAddNode(std::string(tok[3]));
    try {
      b.addTransistor(type, strength, gate, source, drain);
    } catch (const Error& e) {
      fail(lineNo, e.what());
    }
    ++devices;
  }
  if (devices == 0) {
    throw Error("sim netlist contains no transistors");
  }
  return b.build();
}

Network loadSimFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open sim netlist '" + path + "'");
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parseSimNetlist(ss.str());
}

std::string writeSimNetlist(const Network& net) {
  std::string out;
  out += "| written by fmossim\n";
  // Inputs (other than the implicit rails).
  for (const NodeId n : net.allNodes()) {
    const auto& node = net.node(n);
    if (node.isInput && node.name != "Vdd" && node.name != "Gnd") {
      out += "input " + node.name + "\n";
    }
  }
  for (const NodeId n : net.storageNodes()) {
    const auto& node = net.node(n);
    if (node.size != 1) {
      out += format("node %s %u\n", node.name.c_str(), unsigned(node.size));
    }
  }
  const auto& domain = net.domain();
  for (const TransId t : net.allTransistors()) {
    const auto& tr = net.transistor(t);
    // Recover the 1-based strength index from the level.
    const unsigned strength = tr.strength - domain.numSizes();
    const std::string line =
        format("%s %s %s %s %u", transistorTypeName(tr.type),
               net.node(tr.gate).name.c_str(), net.node(tr.source).name.c_str(),
               net.node(tr.drain).name.c_str(), strength);
    if (tr.isFaultDevice()) {
      out += "| fault-device (" +
             std::string(*tr.goodConduction == State::S0 ? "short" : "open") +
             "): " + line + "\n";
    } else {
      out += line + "\n";
    }
  }
  return out;
}

}  // namespace fmossim
