// MOSSIM-style ".sim" transistor netlist reader/writer.
//
// FMOSSIM and MOSSIM II consumed transistor-level netlists extracted from
// layout. We support a documented dialect of the classic format:
//
//   | comment text                     (also '#' comments)
//   input <name> [<name>...]          declare input nodes
//   node <name> <size>                declare a storage node size (optional;
//                                      undeclared nodes default to size 1)
//   n <gate> <source> <drain> [str]   n-type transistor (also 'e')
//   p <gate> <source> <drain> [str]   p-type transistor
//   d <gate> <source> <drain> [str]   depletion transistor (default str 1)
//
// Strength defaults: n/p devices strength 2, d devices strength 1 (the
// two-strength nMOS convention of paper §2). "Vdd" and "Gnd" are implicitly
// input nodes.
#pragma once

#include <iosfwd>
#include <string>

#include "switch/network.hpp"

namespace fmossim {

/// Parses a .sim netlist from text. Throws Error with a line number on
/// malformed input.
Network parseSimNetlist(const std::string& text);

/// Reads a .sim netlist from a file.
Network loadSimFile(const std::string& path);

/// Writes a network in the same dialect (fault devices are emitted as
/// comments since they are not functional devices).
std::string writeSimNetlist(const Network& net);

}  // namespace fmossim
