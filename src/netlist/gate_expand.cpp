#include "netlist/gate_expand.hpp"

#include <unordered_map>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"

namespace fmossim {

ExpandedCircuit expandToCmos(const GateCircuit& circuit) {
  NetworkBuilder b;
  CmosCells cells(b);

  std::unordered_map<std::string, NodeId> byName;
  ExpandedCircuit out;

  for (const std::string& in : circuit.inputs) {
    const NodeId n = b.addInput(in);
    byName.emplace(in, n);
    out.inputs.push_back(n);
  }
  // Pre-create every gate output node so gates can be listed in any order.
  for (const Gate& g : circuit.gates) {
    byName.emplace(g.output, b.addNode(g.output));
  }

  const auto resolve = [&](const std::string& name) {
    const auto it = byName.find(name);
    FMOSSIM_ASSERT(it != byName.end(), "gate input not resolved");
    return it->second;
  };

  for (const Gate& g : circuit.gates) {
    std::vector<NodeId> ins;
    ins.reserve(g.inputs.size());
    for (const std::string& in : g.inputs) ins.push_back(resolve(in));
    const NodeId target = byName.at(g.output);

    switch (g.type) {
      case GateType::Nand:
        cells.nandInto(ins, target);
        break;
      case GateType::Nor:
        cells.norInto(ins, target);
        break;
      case GateType::Not:
        cells.inverterInto(ins[0], target);
        break;
      case GateType::Buff: {
        const NodeId mid = cells.inverter(ins[0], b.uniqueName(g.output + ".b"));
        cells.inverterInto(mid, target);
        break;
      }
      case GateType::And: {
        const NodeId mid = cells.nand(ins, b.uniqueName(g.output + ".n"));
        cells.inverterInto(mid, target);
        break;
      }
      case GateType::Or: {
        const NodeId mid = cells.nor(ins, b.uniqueName(g.output + ".n"));
        cells.inverterInto(mid, target);
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        // Fold multi-input XOR pairwise; final stage lands on the target.
        NodeId acc = ins[0];
        for (std::size_t i = 1; i < ins.size(); ++i) {
          const bool last = (i + 1 == ins.size());
          // a^b = AND(NAND(a,b), OR(a,b)).
          const NodeId nab =
              cells.nand({acc, ins[i]}, b.uniqueName(g.output + ".xn"));
          const NodeId oab =
              cells.orGate({acc, ins[i]}, b.uniqueName(g.output + ".xo"));
          if (last && g.type == GateType::Xor) {
            const NodeId m =
                cells.nand({nab, oab}, b.uniqueName(g.output + ".xm"));
            cells.inverterInto(m, target);
            acc = target;
          } else if (last) {  // XNOR: invert the AND
            cells.nandInto({nab, oab}, target);
            acc = target;
          } else {
            acc = cells.andGate({nab, oab}, b.uniqueName(g.output + ".xa"));
          }
        }
        break;
      }
    }
  }

  for (const std::string& o : circuit.outputs) {
    out.outputs.push_back(byName.at(o));
  }
  out.net = b.build();
  return out;
}

FaultList gateLevelStuckFaults(const GateCircuit& circuit,
                               const ExpandedCircuit& expanded) {
  FaultList faults;
  const auto addBoth = [&](NodeId n) {
    faults.add(Fault::nodeStuckAt(expanded.net, n, State::S0));
    faults.add(Fault::nodeStuckAt(expanded.net, n, State::S1));
  };
  for (const NodeId in : expanded.inputs) addBoth(in);
  for (const Gate& g : circuit.gates) {
    addBoth(expanded.net.nodeByName(g.output));
  }
  return faults;
}

}  // namespace fmossim
