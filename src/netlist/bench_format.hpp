// ISCAS-85 ".bench" gate-level netlist reader.
//
// The public ISCAS-85 benchmark circuits (c17, c432, ...) are distributed in
// this format:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//
// Supported gate types: AND, OR, NAND, NOR, NOT, BUFF, XOR, XNOR.
// The parsed gate-level circuit can be expanded to a switch-level CMOS
// network with expandToCmos() (see gate_expand.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fmossim {

enum class GateType : std::uint8_t {
  And,
  Or,
  Nand,
  Nor,
  Not,
  Buff,
  Xor,
  Xnor,
};

const char* gateTypeName(GateType t);

struct Gate {
  std::string output;
  GateType type;
  std::vector<std::string> inputs;
};

/// A parsed gate-level circuit.
struct GateCircuit {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<Gate> gates;

  std::size_t numGates() const { return gates.size(); }
};

/// Parses .bench text. Throws Error (with line numbers) on malformed input,
/// undefined signals, or duplicate definitions.
GateCircuit parseBench(const std::string& text, const std::string& name = "");

/// Reads a .bench file.
GateCircuit loadBenchFile(const std::string& path);

/// The ISCAS-85 c17 benchmark (6 NAND gates), embedded so examples and
/// tests run without external files.
extern const char* const kIscas85C17;

}  // namespace fmossim
