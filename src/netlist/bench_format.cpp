#include "netlist/bench_format.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fmossim {

const char* const kIscas85C17 = R"(# c17 - ISCAS-85 benchmark (smallest member)
# 5 inputs, 2 outputs, 6 NAND gates
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

const char* gateTypeName(GateType t) {
  switch (t) {
    case GateType::And: return "AND";
    case GateType::Or: return "OR";
    case GateType::Nand: return "NAND";
    case GateType::Nor: return "NOR";
    case GateType::Not: return "NOT";
    case GateType::Buff: return "BUFF";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& msg) {
  throw Error(format("bench netlist line %zu: %s", lineNo, msg.c_str()));
}

GateType gateTypeFromName(const std::string& name, std::size_t lineNo) {
  const std::string up = toUpper(name);
  if (up == "AND") return GateType::And;
  if (up == "OR") return GateType::Or;
  if (up == "NAND") return GateType::Nand;
  if (up == "NOR") return GateType::Nor;
  if (up == "NOT" || up == "INV") return GateType::Not;
  if (up == "BUFF" || up == "BUF") return GateType::Buff;
  if (up == "XOR") return GateType::Xor;
  if (up == "XNOR") return GateType::Xnor;
  fail(lineNo, "unsupported gate type '" + name + "'");
}

// Extracts the text inside the first (...) pair. Anything after the closing
// parenthesis is an error, not silently ignored.
std::string_view parens(std::string_view s, std::size_t lineNo) {
  const auto open = s.find('(');
  const auto close = s.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    fail(lineNo, "expected parenthesised argument list");
  }
  if (!trim(s.substr(close + 1)).empty()) {
    fail(lineNo, "unexpected text after ')'");
  }
  return s.substr(open + 1, close - open - 1);
}

}  // namespace

GateCircuit parseBench(const std::string& text, const std::string& name) {
  GateCircuit circuit;
  circuit.name = name;

  std::istringstream stream(text);
  std::string line;
  std::size_t lineNo = 0;
  std::unordered_set<std::string> defined;   // inputs + gate outputs
  std::unordered_set<std::string> declaredOutputs;

  while (std::getline(stream, line)) {
    ++lineNo;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      // The keyword is everything before '(' — exactly INPUT or OUTPUT, so
      // that a typo like "INPUTS(1)" errors instead of being accepted.
      const auto open = trimmed.find('(');
      const std::string up =
          open == std::string_view::npos
              ? std::string()
              : toUpper(trim(trimmed.substr(0, open)));
      if (up == "INPUT") {
        const std::string sig(trim(parens(trimmed, lineNo)));
        if (sig.empty()) fail(lineNo, "empty INPUT name");
        if (!defined.insert(sig).second) fail(lineNo, "duplicate INPUT '" + sig + "'");
        circuit.inputs.push_back(sig);
      } else if (up == "OUTPUT") {
        const std::string sig(trim(parens(trimmed, lineNo)));
        if (sig.empty()) fail(lineNo, "empty OUTPUT name");
        if (!declaredOutputs.insert(sig).second) {
          fail(lineNo, "duplicate OUTPUT '" + sig + "'");
        }
        circuit.outputs.push_back(sig);
      } else {
        fail(lineNo, "unrecognized line");
      }
      continue;
    }

    Gate gate;
    gate.output = std::string(trim(trimmed.substr(0, eq)));
    if (gate.output.empty()) fail(lineNo, "missing gate output name");
    const auto rhs = trim(trimmed.substr(eq + 1));
    const auto open = rhs.find('(');
    if (open == std::string_view::npos) fail(lineNo, "missing gate argument list");
    gate.type = gateTypeFromName(std::string(trim(rhs.substr(0, open))), lineNo);
    for (const auto& arg : split(parens(rhs, lineNo), ',')) {
      const auto argTrim = trim(arg);
      if (argTrim.empty()) fail(lineNo, "empty gate input");
      gate.inputs.emplace_back(argTrim);
    }
    if (gate.inputs.empty()) fail(lineNo, "gate has no inputs");
    if ((gate.type == GateType::Not || gate.type == GateType::Buff) &&
        gate.inputs.size() != 1) {
      fail(lineNo, "NOT/BUFF take exactly one input");
    }
    if (!defined.insert(gate.output).second) {
      fail(lineNo, "duplicate definition of '" + gate.output + "'");
    }
    circuit.gates.push_back(std::move(gate));
  }

  // Semantic checks: every referenced signal must be defined somewhere.
  for (const Gate& g : circuit.gates) {
    for (const std::string& in : g.inputs) {
      if (defined.count(in) == 0) {
        throw Error("bench netlist: gate '" + g.output +
                    "' references undefined signal '" + in + "'");
      }
    }
  }
  for (const std::string& out : circuit.outputs) {
    if (defined.count(out) == 0) {
      throw Error("bench netlist: OUTPUT '" + out + "' is never defined");
    }
  }
  if (circuit.gates.empty()) {
    throw Error("bench netlist contains no gates");
  }
  return circuit;
}

GateCircuit loadBenchFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open bench netlist '" + path + "'");
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parseBench(ss.str(), path);
}

}  // namespace fmossim
