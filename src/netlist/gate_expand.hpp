// Gate-level to switch-level expansion.
//
// Expands a parsed gate circuit (ISCAS .bench) into a complementary CMOS
// transistor network: NAND/NOR become single complementary stages, AND/OR
// add an output inverter, XOR/XNOR are composed from those. Gate output
// names are preserved as node names, so gate-level stuck-at fault universes
// map directly onto switch-level node faults.
#pragma once

#include "netlist/bench_format.hpp"
#include "faults/fault.hpp"
#include "switch/network.hpp"

namespace fmossim {

/// The expanded circuit with its interface.
struct ExpandedCircuit {
  std::vector<NodeId> inputs;   ///< in GateCircuit::inputs order
  std::vector<NodeId> outputs;  ///< in GateCircuit::outputs order
  Network net;                  ///< declared last; assigned at build
};

/// Expands to CMOS. Throws Error on unsupported constructs.
ExpandedCircuit expandToCmos(const GateCircuit& circuit);

/// Gate-level single-stuck-at universe: SA0 + SA1 on every gate output and
/// every primary input... in the switch-level expansion these are node
/// stuck faults on the corresponding nets (inputs use their buffered
/// internal nets if present; primary-input faults are stuck input nodes).
FaultList gateLevelStuckFaults(const GateCircuit& circuit,
                               const ExpandedCircuit& expanded);

}  // namespace fmossim
