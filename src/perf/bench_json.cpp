#include "perf/bench_json.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "util/strings.hpp"

namespace fmossim::perf {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Fixed-precision float rendering: stable round-trip without locale traps.
std::string num(double v) { return format("%.6f", v); }

// ----------------------------------------------------------------- parser --
//
// Minimal recursive-descent JSON parser covering the subset toJson() emits
// (objects, arrays, strings with the escapes above, numbers, booleans).
// Errors carry the byte offset for debuggability.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  // --- values ---------------------------------------------------------------

  void expect(char c) {
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool tryConsume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: fail("unsupported escape");
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  double parseNumber() {
    skipWs();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) fail("expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  bool parseBool() {
    skipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected boolean");
    return false;  // unreachable
  }

  /// Iterates an object: calls onKey(key) for each member (the callback must
  /// consume the value).
  template <typename F>
  void parseObject(F onKey) {
    expect('{');
    if (tryConsume('}')) return;
    do {
      const std::string key = parseString();
      expect(':');
      onKey(key);
    } while (tryConsume(','));
    expect('}');
  }

  template <typename F>
  void parseArray(F onElement) {
    expect('[');
    if (tryConsume(']')) return;
    do {
      onElement();
    } while (tryConsume(','));
    expect(']');
  }

  void end() {
    skipWs();
    if (pos_ != text_.size()) fail("trailing garbage");
  }

  [[noreturn]] void fail(const std::string& what) {
    throw Error(format("bench JSON: %s at byte %zu", what.c_str(), pos_));
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::uint64_t parseChecksum(const std::string& s) {
  if (s.size() < 3 || s[0] != '0' || s[1] != 'x') {
    throw Error("bench JSON: checksum must be a 0x-prefixed hex string");
  }
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str() + 2, &end, 16);
  if (end == nullptr || *end != '\0') {
    throw Error("bench JSON: malformed checksum '" + s + "'");
  }
  return v;
}

}  // namespace

std::string toJson(const ScenarioResult& r) {
  std::string out;
  out += "{\n";
  out += format("  \"schemaVersion\": %d,\n", r.schemaVersion);
  out += "  \"scenario\": \"" + escape(r.scenario) + "\",\n";
  out += "  \"description\": \"" + escape(r.description) + "\",\n";
  out += format(
      "  \"circuit\": {\"transistors\": %u, \"nodes\": %u, \"faults\": %u, "
      "\"patterns\": %u},\n",
      r.transistors, r.nodes, r.faults, r.patterns);
  // Checkpoint-store accounting (PR 5): absent for scenarios that never
  // touched the store, so their files — and older baselines — stay
  // byte-compatible.
  if (r.checkpointRecordings > 0 || r.checkpointBudget > 0) {
    out += format(
        "  \"checkpoint\": {\"budgetBytes\": %llu, \"recordings\": %u, "
        "\"residentBytes\": %llu},\n",
        static_cast<unsigned long long>(r.checkpointBudget),
        r.checkpointRecordings,
        static_cast<unsigned long long>(r.checkpointResidentBytes));
  }
  // Host provenance (PR 6): additive like the checkpoint object, omitted
  // when unset so synthetic results round-trip unchanged.
  if (!r.hostTimestamp.empty() || r.hostHardwareConcurrency > 0 ||
      !r.hostBuildType.empty()) {
    out += format(
        "  \"host\": {\"timestamp\": \"%s\", \"hardwareConcurrency\": %u, "
        "\"buildType\": \"%s\"},\n",
        escape(r.hostTimestamp).c_str(), r.hostHardwareConcurrency,
        escape(r.hostBuildType).c_str());
  }
  // Service-mode summary (PR 6): only the loadgen harness sets it.
  if (r.service.has_value()) {
    const ServiceSummary& s = *r.service;
    out += format(
        "  \"service\": {\"requests\": %u, \"distinctWorkloads\": %u, "
        "\"poolEngines\": %u, \"workers\": %u, \"requestsPerSec\": %s, "
        "\"p50Ms\": %s, \"p95Ms\": %s, \"p99Ms\": %s, \"storeHits\": %llu, "
        "\"storeRecordings\": %llu, \"engineReuses\": %llu},\n",
        s.requests, s.distinctWorkloads, s.poolEngines, s.workers,
        num(s.requestsPerSec).c_str(), num(s.p50Ms).c_str(),
        num(s.p95Ms).c_str(), num(s.p99Ms).c_str(),
        static_cast<unsigned long long>(s.storeHits),
        static_cast<unsigned long long>(s.storeRecordings),
        static_cast<unsigned long long>(s.engineReuses));
  }
  // SEU campaign summary (PR 9): additive like the service object, present
  // only for transient-fault grading scenarios.
  if (r.seu.has_value()) {
    const SeuSummary& s = *r.seu;
    out += format(
        "  \"seu\": {\"injections\": %u, \"instants\": %u, \"detected\": %u, "
        "\"silent\": %u, \"latent\": %u},\n",
        s.injections, s.instants, s.detected, s.silent, s.latent);
  }
  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    const BenchRow& row = r.rows[i];
    out += "    {";
    out += "\"backend\": \"" + escape(row.backend) + "\", ";
    out += format("\"jobs\": %u, ", row.jobs);
    out += "\"policy\": \"" + escape(row.policy) + "\", ";
    out += format("\"dropDetected\": %s, ", row.dropDetected ? "true" : "false");
    out += format("\"laneWidth\": %u, ", row.laneWidth);
    // Additive like laneWidth: emitted only for streaming rows, so
    // materialized rows — and older baselines — stay byte-compatible.
    if (row.streamed) out += "\"streamed\": true, ";
    // Additive like streamed: emitted only for non-default schedule
    // policies, so contiguous rows — and older parsers — are unaffected.
    if (row.schedule != "contiguous") {
      out += "\"schedule\": \"" + escape(row.schedule) + "\", ";
    }
    out += "\"medianMs\": " + num(row.medianMs) + ", ";
    out += "\"stddevMs\": " + num(row.stddevMs) + ", ";
    out += format("\"reps\": %u, ", row.reps);
    out += format("\"checksum\": \"0x%016" PRIx64 "\", ", row.checksum);
    out += format("\"nodeEvals\": %llu, ",
                  static_cast<unsigned long long>(row.nodeEvals));
    out += format("\"numDetected\": %u, ", row.numDetected);
    out += format("\"numFaults\": %u", row.numFaults);
    out += i + 1 < r.rows.size() ? "},\n" : "}\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

ScenarioResult parseBenchJson(const std::string& text) {
  ScenarioResult r;
  r.schemaVersion = 0;
  Parser p(text);
  p.parseObject([&](const std::string& key) {
    if (key == "schemaVersion") {
      r.schemaVersion = static_cast<int>(p.parseNumber());
    } else if (key == "scenario") {
      r.scenario = p.parseString();
    } else if (key == "description") {
      r.description = p.parseString();
    } else if (key == "circuit") {
      p.parseObject([&](const std::string& ck) {
        const double v = p.parseNumber();
        if (ck == "transistors") r.transistors = static_cast<std::uint32_t>(v);
        else if (ck == "nodes") r.nodes = static_cast<std::uint32_t>(v);
        else if (ck == "faults") r.faults = static_cast<std::uint32_t>(v);
        else if (ck == "patterns") r.patterns = static_cast<std::uint32_t>(v);
        else throw Error("bench JSON: unknown circuit key '" + ck + "'");
      });
    } else if (key == "checkpoint") {
      // Optional (schema 1 additive): absent in files written before the
      // checkpoint store existed.
      p.parseObject([&](const std::string& ck) {
        const double v = p.parseNumber();
        if (ck == "budgetBytes") {
          r.checkpointBudget = static_cast<std::uint64_t>(v);
        } else if (ck == "recordings") {
          r.checkpointRecordings = static_cast<std::uint32_t>(v);
        } else if (ck == "residentBytes") {
          r.checkpointResidentBytes = static_cast<std::uint64_t>(v);
        } else {
          throw Error("bench JSON: unknown checkpoint key '" + ck + "'");
        }
      });
    } else if (key == "host") {
      // Optional (schema 1 additive): absent in files written before host
      // provenance existed.
      p.parseObject([&](const std::string& hk) {
        if (hk == "timestamp") {
          r.hostTimestamp = p.parseString();
        } else if (hk == "hardwareConcurrency") {
          r.hostHardwareConcurrency = static_cast<std::uint32_t>(p.parseNumber());
        } else if (hk == "buildType") {
          r.hostBuildType = p.parseString();
        } else {
          throw Error("bench JSON: unknown host key '" + hk + "'");
        }
      });
    } else if (key == "service") {
      // Optional: present only in loadgen-emitted service benchmarks.
      ServiceSummary s;
      p.parseObject([&](const std::string& sk) {
        const double v = p.parseNumber();
        if (sk == "requests") s.requests = static_cast<std::uint32_t>(v);
        else if (sk == "distinctWorkloads") s.distinctWorkloads = static_cast<std::uint32_t>(v);
        else if (sk == "poolEngines") s.poolEngines = static_cast<std::uint32_t>(v);
        else if (sk == "workers") s.workers = static_cast<std::uint32_t>(v);
        else if (sk == "requestsPerSec") s.requestsPerSec = v;
        else if (sk == "p50Ms") s.p50Ms = v;
        else if (sk == "p95Ms") s.p95Ms = v;
        else if (sk == "p99Ms") s.p99Ms = v;
        else if (sk == "storeHits") s.storeHits = static_cast<std::uint64_t>(v);
        else if (sk == "storeRecordings") s.storeRecordings = static_cast<std::uint64_t>(v);
        else if (sk == "engineReuses") s.engineReuses = static_cast<std::uint64_t>(v);
        else throw Error("bench JSON: unknown service key '" + sk + "'");
      });
      r.service = s;
    } else if (key == "seu") {
      // Optional: present only in SEU grading scenario benchmarks.
      SeuSummary s;
      p.parseObject([&](const std::string& sk) {
        const double v = p.parseNumber();
        if (sk == "injections") s.injections = static_cast<std::uint32_t>(v);
        else if (sk == "instants") s.instants = static_cast<std::uint32_t>(v);
        else if (sk == "detected") s.detected = static_cast<std::uint32_t>(v);
        else if (sk == "silent") s.silent = static_cast<std::uint32_t>(v);
        else if (sk == "latent") s.latent = static_cast<std::uint32_t>(v);
        else throw Error("bench JSON: unknown seu key '" + sk + "'");
      });
      r.seu = s;
    } else if (key == "rows") {
      p.parseArray([&] {
        BenchRow row;
        p.parseObject([&](const std::string& rk) {
          if (rk == "backend") row.backend = p.parseString();
          else if (rk == "jobs") row.jobs = static_cast<unsigned>(p.parseNumber());
          else if (rk == "policy") row.policy = p.parseString();
          else if (rk == "dropDetected") row.dropDetected = p.parseBool();
          // Additive: absent in pre-lane baselines, which parse as scalar.
          else if (rk == "laneWidth") row.laneWidth = static_cast<std::uint32_t>(p.parseNumber());
          // Additive: absent in pre-streaming baselines (materialized rows).
          else if (rk == "streamed") row.streamed = p.parseBool();
          // Additive: absent in pre-schedule baselines (contiguous rows).
          else if (rk == "schedule") row.schedule = p.parseString();
          else if (rk == "medianMs") row.medianMs = p.parseNumber();
          else if (rk == "stddevMs") row.stddevMs = p.parseNumber();
          else if (rk == "reps") row.reps = static_cast<unsigned>(p.parseNumber());
          else if (rk == "checksum") row.checksum = parseChecksum(p.parseString());
          else if (rk == "nodeEvals") row.nodeEvals = static_cast<std::uint64_t>(p.parseNumber());
          else if (rk == "numDetected") row.numDetected = static_cast<std::uint32_t>(p.parseNumber());
          else if (rk == "numFaults") row.numFaults = static_cast<std::uint32_t>(p.parseNumber());
          else throw Error("bench JSON: unknown row key '" + rk + "'");
        });
        r.rows.push_back(std::move(row));
      });
    } else {
      throw Error("bench JSON: unknown key '" + key + "'");
    }
  });
  p.end();
  if (r.schemaVersion != 1) {
    throw Error(format("bench JSON: unsupported schemaVersion %d (want 1)",
                       r.schemaVersion));
  }
  return r;
}

std::string benchFileName(const std::string& scenario) {
  return "BENCH_" + scenario + ".json";
}

std::string writeBenchFile(const ScenarioResult& result,
                           const std::string& outDir) {
  const std::string dir = outDir.empty() ? std::string(".") : outDir;
  // CI writes into build/bench/ so artifact upload cannot race a dirty
  // checkout; create the directory on demand.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw Error("cannot create benchmark output directory '" + dir +
                "': " + ec.message());
  }
  const std::string path = dir + "/" + benchFileName(result.scenario);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw Error("cannot write benchmark file '" + path + "'");
  }
  const std::string json = toJson(result);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    throw Error("short write to benchmark file '" + path + "'");
  }
  return path;
}

}  // namespace fmossim::perf
