/// \file
/// Named benchmark scenario registry — the single source of truth for what
/// the performance harness measures.
///
/// Every scenario is a complete, deterministic fault-simulation workload
/// (network + fault universe + test sequence) with a fixed matrix of engine
/// configurations (backend, jobs, detection policy, drop mode). The paper
/// reproduction harnesses under bench/ and the JSON-emitting BenchRunner
/// (bench_runner.hpp) both build their workloads here, so a figure in
/// docs/PAPER_MAP.md, a bench/fig*.cpp harness and a BENCH_<scenario>.json
/// file all refer to the same bytes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "circuits/ram.hpp"
#include "faults/fault.hpp"
#include "faults/transient.hpp"
#include "patterns/pattern.hpp"
#include "patterns/pattern_source.hpp"  // GeneratedSequenceConfig
#include "switch/network.hpp"

/// Reproducible performance harness over the Engine API: scenario registry,
/// BenchRunner, and BENCH_*.json serialization (see docs/BENCHMARKING.md).
namespace fmossim::perf {

/// The paper's fault universe for a RAM (§5): all single storage-node
/// stuck-at faults plus all adjacent-bit-line shorts.
FaultList paperFaultUniverse(const RamCircuit& ram);

/// Engine configuration of the paper's own measurements: concurrent backend,
/// literal "any difference" detection criterion.
EngineOptions paperEngineOptions();

/// One engine configuration to measure a scenario under.
struct RowSpec {
  Backend backend = Backend::Concurrent;  ///< simulation strategy
  unsigned jobs = 1;  ///< >1 selects the sharded concurrent runner
  DetectionPolicy policy = DetectionPolicy::DefiniteOnly;  ///< detection criterion
  bool dropDetected = true;  ///< drop faulty circuits once detected
  std::uint32_t batchFaults = 0;  ///< sharded fault-batch size (0 = auto)
  std::uint32_t laneWidth = 1;    ///< fault-lane sharing window (1 = scalar)
  /// SEU campaign scenarios only (Workload::seuCampaign non-empty): run the
  /// naive from-scratch baseline (one full-sequence engine per injection)
  /// instead of checkpoint-replay tails. The replay rows' checksums must
  /// equal this row's — the harness-level restatement of the SEU oracle.
  bool seuNaive = false;
  /// Batch-layout policy for sharded rows (EngineOptions::schedule).
  /// History rows consume the detection record the scenario's earlier
  /// contiguous rows published into the shared per-scenario history store;
  /// their checksums and nodeEvals must equal the contiguous rows' exactly
  /// (the policy only reorders), which `bench --check` gates.
  sched::SchedulePolicy schedule = sched::SchedulePolicy::Contiguous;

  /// EngineOptions equivalent of this row.
  EngineOptions engineOptions() const;
  /// Stable row label ("concurrent", "sharded-4", "concurrent-lanes32",
  /// "sharded-4-hist", "serial").
  std::string label() const;
  /// Stable row label for SEU campaign scenarios ("seu-replay",
  /// "seu-replay-4", "seu-replay-lanes32", "seu-naive").
  std::string seuLabel() const;
};

/// A fully built benchmark workload.
struct Workload {
  std::string scenario;     ///< registry name ("ram64_seq1", ...)
  std::string description;  ///< one-line human summary incl. paper reference
  Network net;              ///< the circuit under test
  FaultList faults;         ///< fault universe, global index order
  TestSequence seq;         ///< test patterns + observed outputs
  /// When set, the scenario's sequence is never materialized: every row runs
  /// through Engine::runStream over a GeneratedPatternSource built from this
  /// config (`seq` stays empty), so resident memory is flat in the pattern
  /// count — the configuration the million-pattern scale tracker uses.
  std::optional<GeneratedSequenceConfig> streamConfig;
  /// When non-empty, the scenario is a transient-fault (SEU) grading
  /// campaign: every row runs src/seu/ runSeuCampaign over this campaign
  /// (instead of Engine::run over `faults`), with RowSpec::seuNaive
  /// selecting the from-scratch baseline row. `faults` stays empty.
  TransientList seuCampaign;
  std::vector<RowSpec> rows;  ///< configurations the harness measures
  /// Memory budget for the scenario's shared checkpoint store: 0 keeps the
  /// good-machine trace in RAM; > 0 spills it to disk and replays through a
  /// sliding window (huge-sequence scenarios set this so the spill path is
  /// measured — and exercised by CI — by default). The harness's
  /// `--checkpoint-budget` flag overrides it.
  std::size_t checkpointBudgetBytes = 0;
};

/// Deterministic, stable-order list of all scenario names. The order is the
/// order BenchRunner runs them in.
const std::vector<std::string>& scenarioNames();

/// True if `name` is a registered scenario.
bool isScenario(const std::string& name);

/// Builds the named scenario's workload. Deterministic: two calls produce
/// bit-identical workloads. Throws Error for unknown names.
Workload buildScenarioWorkload(const std::string& name);

}  // namespace fmossim::perf
