#include "perf/bench_check.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "perf/bench_json.hpp"
#include "util/strings.hpp"

namespace fmossim::perf {

namespace {

std::string rowKey(const BenchRow& row) {
  return format("%s jobs=%u policy=%s drop=%s lanes=%u%s%s",
                row.backend.c_str(), row.jobs, row.policy.c_str(),
                row.dropDetected ? "yes" : "no", row.laneWidth,
                row.streamed ? " streamed" : "",
                row.schedule != "contiguous"
                    ? (" schedule=" + row.schedule).c_str()
                    : "");
}

const BenchRow* findRow(const ScenarioResult& sr, const BenchRow& like) {
  for (const BenchRow& row : sr.rows) {
    if (row.backend == like.backend && row.jobs == like.jobs &&
        row.policy == like.policy && row.dropDetected == like.dropDetected &&
        row.laneWidth == like.laneWidth && row.streamed == like.streamed &&
        row.schedule == like.schedule) {
      return &row;
    }
  }
  return nullptr;
}

std::string readFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw Error("cannot read baseline file '" + path + "'");
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw Error("error reading baseline file '" + path + "'");
  return text;
}

}  // namespace

void checkScenarioAgainstBaseline(const ScenarioResult& fresh,
                                  const ScenarioResult& baseline,
                                  double tolerancePct, CheckReport& report) {
  const auto issue = [&](const std::string& row, std::string detail) {
    report.issues.push_back({fresh.scenario, row, std::move(detail)});
  };
  if (fresh.faults != baseline.faults || fresh.patterns != baseline.patterns ||
      fresh.transistors != baseline.transistors ||
      fresh.nodes != baseline.nodes) {
    issue("", format("workload shape changed: baseline %u faults/%u patterns/"
                     "%u transistors, fresh %u/%u/%u — refresh the baseline",
                     baseline.faults, baseline.patterns, baseline.transistors,
                     fresh.faults, fresh.patterns, fresh.transistors));
    return;  // row comparisons would only repeat the message
  }
  // SEU grading scenarios: the campaign outcome tally is deterministic, so
  // it is gated exactly like checksums — any drift means the grading
  // semantics changed.
  if (fresh.seu.has_value() != baseline.seu.has_value()) {
    issue("", fresh.seu.has_value()
                  ? "fresh results carry an seu summary the baseline lacks — "
                    "refresh the baseline"
                  : "baseline carries an seu summary the fresh results lack");
  } else if (fresh.seu.has_value()) {
    const SeuSummary& f = *fresh.seu;
    const SeuSummary& b = *baseline.seu;
    if (f.injections != b.injections || f.instants != b.instants ||
        f.detected != b.detected || f.silent != b.silent ||
        f.latent != b.latent) {
      issue("", format("seu grading drift: baseline %u injections/%u instants "
                       "-> %u detected/%u silent/%u latent, fresh %u/%u -> "
                       "%u/%u/%u — the campaign result changed",
                       b.injections, b.instants, b.detected, b.silent,
                       b.latent, f.injections, f.instants, f.detected,
                       f.silent, f.latent));
    }
  }
  for (const BenchRow& base : baseline.rows) {
    if (findRow(fresh, base) == nullptr) {
      issue(rowKey(base), "row missing from fresh results (matrix changed "
                          "without a baseline refresh)");
    }
  }
  for (const BenchRow& row : fresh.rows) {
    const BenchRow* base = findRow(baseline, row);
    if (base == nullptr) {
      issue(rowKey(row), "row missing from baseline (matrix changed without "
                         "a baseline refresh)");
      continue;
    }
    ++report.rowsChecked;
    if (row.checksum != base->checksum) {
      issue(rowKey(row),
            format("result checksum drift: baseline 0x%016" PRIx64
                   ", fresh 0x%016" PRIx64 " — the simulation result changed",
                   base->checksum, row.checksum));
    }
    if (row.nodeEvals != base->nodeEvals) {
      issue(rowKey(row),
            format("nodeEvals drift: baseline %llu, fresh %llu — the "
                   "deterministic work counter changed",
                   static_cast<unsigned long long>(base->nodeEvals),
                   static_cast<unsigned long long>(row.nodeEvals)));
    }
    if (row.numDetected != base->numDetected ||
        row.numFaults != base->numFaults) {
      issue(rowKey(row), format("detection drift: baseline %u/%u, fresh %u/%u",
                                base->numDetected, base->numFaults,
                                row.numDetected, row.numFaults));
    }
    const double limit = base->medianMs * (1.0 + tolerancePct / 100.0);
    if (row.medianMs > limit) {
      issue(rowKey(row),
            format("wall-clock regression: baseline median %.3f ms, fresh "
                   "%.3f ms (+%.1f%%, tolerance %.0f%%)",
                   base->medianMs, row.medianMs,
                   100.0 * (row.medianMs / base->medianMs - 1.0),
                   tolerancePct));
    }
  }
}

void checkServiceBaselineShape(const ScenarioResult& baseline,
                               CheckReport& report) {
  const auto issue = [&](std::string detail) {
    report.issues.push_back({baseline.scenario, "", std::move(detail)});
  };
  if (!baseline.service.has_value()) {
    issue("not a service benchmark (no \"service\" object)");
    return;
  }
  const ServiceSummary& s = *baseline.service;
  if (baseline.rows.empty()) issue("service benchmark has no rows");
  if (s.requests == 0) issue("service benchmark replayed zero requests");
  if (s.requestsPerSec <= 0.0) issue("requestsPerSec must be positive");
  if (s.p99Ms <= 0.0) issue("p99 latency must be positive");
  if (s.p50Ms > s.p95Ms || s.p95Ms > s.p99Ms) {
    issue(format("latency percentiles out of order: p50 %.3f, p95 %.3f, "
                 "p99 %.3f",
                 s.p50Ms, s.p95Ms, s.p99Ms));
  }
  if (s.storeRecordings == 0) {
    issue("service benchmark performed no good-machine recordings (the "
          "shared checkpoint store was never engaged)");
  }
  if (s.distinctWorkloads > 0 && s.requests > s.distinctWorkloads &&
      s.storeHits == 0) {
    issue("repeat submissions but zero checkpoint-store hits — engine reuse "
          "is broken");
  }
  for (const BenchRow& row : baseline.rows) {
    ++report.rowsChecked;
    if (row.checksum == 0) {
      issue(rowKey(row) + ": zero result checksum");
    }
  }
}

CheckReport checkAgainstBaselines(const std::vector<ScenarioResult>& fresh,
                                  const CheckOptions& options) {
  CheckReport report;
  for (const ScenarioResult& sr : fresh) {
    const std::string path = (options.baselineDir.empty()
                                  ? std::string(".")
                                  : options.baselineDir) +
                             "/" + benchFileName(sr.scenario);
    ScenarioResult baseline;
    try {
      baseline = parseBenchJson(readFile(path));
    } catch (const Error& e) {
      report.issues.push_back({sr.scenario, "", e.what()});
      continue;
    }
    checkScenarioAgainstBaseline(sr, baseline, options.tolerancePct, report);
  }
  if (options.expectComplete) {
    // The reverse direction: every baseline file must still have a live
    // scenario, or the registry changed without cleaning up.
    const std::string dir =
        options.baselineDir.empty() ? std::string(".") : options.baselineDir;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) != 0 ||
          name.find(".json") != name.size() - 5) {
        continue;
      }
      const std::string scenario = name.substr(6, name.size() - 6 - 5);
      bool live = false;
      for (const ScenarioResult& sr : fresh) {
        if (sr.scenario == scenario) {
          live = true;
          break;
        }
      }
      if (!live) {
        // A baseline with no live scenario is stale — unless it is a
        // service benchmark (loadgen emits BENCH_serve_mixed.json outside
        // the scenario registry); those are shape-validated instead of
        // compared.
        bool handled = false;
        try {
          const ScenarioResult baseline =
              parseBenchJson(readFile(entry.path().string()));
          if (baseline.service.has_value()) {
            checkServiceBaselineShape(baseline, report);
            handled = true;
          }
        } catch (const Error&) {
          // Unparsable: fall through to the stale-baseline issue below.
        }
        if (!handled) {
          report.issues.push_back(
              {scenario, "",
               "stale baseline file '" + name +
                   "' has no matching scenario in the fresh run — remove it "
                   "or restore the scenario"});
        }
      }
    }
    if (ec) {
      report.issues.push_back(
          {"", "", "cannot scan baseline directory '" + dir +
                       "': " + ec.message()});
    }
  }
  return report;
}

}  // namespace fmossim::perf
