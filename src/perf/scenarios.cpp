#include "perf/scenarios.hpp"

#include "faults/universe.hpp"
#include "gen/random_circuit.hpp"
#include "gen/transient_gen.hpp"
#include "patterns/marching.hpp"
#include "util/error.hpp"

namespace fmossim::perf {

FaultList paperFaultUniverse(const RamCircuit& ram) {
  FaultList faults = allStorageNodeStuckFaults(ram.net);
  for (const TransId ft : ram.bitLineShorts) {
    faults.add(Fault::faultDeviceActive(ram.net, ft));
  }
  return faults;
}

EngineOptions paperEngineOptions() {
  EngineOptions opts;
  opts.backend = Backend::Concurrent;
  opts.policy = DetectionPolicy::AnyDifference;
  return opts;
}

EngineOptions RowSpec::engineOptions() const {
  EngineOptions opts;
  opts.backend = backend;
  opts.jobs = jobs;
  opts.policy = policy;
  opts.dropDetected = dropDetected;
  opts.batchFaults = batchFaults;
  opts.laneWidth = laneWidth;
  opts.schedule = schedule;
  return opts;
}

std::string RowSpec::label() const {
  if (backend == Backend::Serial) return "serial";
  std::string base = jobs > 1 ? "sharded-" + std::to_string(jobs) : "concurrent";
  if (laneWidth > 1) base += "-lanes" + std::to_string(laneWidth);
  if (schedule == sched::SchedulePolicy::History) base += "-hist";
  return base;
}

std::string RowSpec::seuLabel() const {
  std::string base = seuNaive
                         ? "seu-naive"
                         : (jobs > 1 ? "seu-replay-" + std::to_string(jobs)
                                     : "seu-replay");
  if (laneWidth > 1) base += "-lanes" + std::to_string(laneWidth);
  return base;
}

namespace {

// The standard row matrix: the concurrent headline, the sharded scaling
// points, the no-drop ablation, and (for workloads where a serial replay is
// affordable) the serial baseline.
std::vector<RowSpec> rowMatrix(DetectionPolicy policy, bool withSerial) {
  std::vector<RowSpec> rows;
  if (withSerial) {
    rows.push_back({Backend::Serial, 1, policy, true});
  }
  rows.push_back({Backend::Concurrent, 1, policy, true});
  rows.push_back({Backend::Concurrent, 2, policy, true});
  rows.push_back({Backend::Concurrent, 4, policy, true});
  rows.push_back({Backend::Concurrent, 1, policy, false});
  return rows;
}

Workload ramScenario(const std::string& name, const RamConfig& config,
                     bool seq2, bool withSerial, const char* description) {
  Workload w;
  w.scenario = name;
  w.description = description;
  RamCircuit ram = buildRam(config);
  w.faults = paperFaultUniverse(ram);
  w.seq = seq2 ? ramTestSequence2(ram) : ramTestSequence1(ram);
  w.net = std::move(ram.net);
  // The paper's detection criterion is literal "any difference".
  w.rows = rowMatrix(DetectionPolicy::AnyDifference, withSerial);
  return w;
}

// Fixed (non-randomized) generator configurations so the fuzz scenarios are
// stable benchmark workloads, not moving targets.
GenOptions fuzzGen(std::uint64_t seed, std::uint32_t nodes,
                   std::uint32_t inputs, std::uint32_t faults,
                   std::uint32_t patterns) {
  GenOptions gen;
  gen.seed = seed;
  gen.numNodes = nodes;
  gen.numInputs = inputs;
  gen.numFaults = faults;
  gen.numPatterns = patterns;
  gen.numOutputs = 4;
  gen.maxSettingsPerPattern = 3;
  return gen;
}

Workload fuzzScenario(const std::string& name, const GenOptions& gen,
                      const char* description) {
  Workload w;
  w.scenario = name;
  w.description = description;
  GeneratedWorkload g = generateWorkload(gen);
  w.net = std::move(g.net);
  w.faults = std::move(g.faults);
  w.seq = std::move(g.seq);
  // Library default policy; serial is affordable at these sizes.
  w.rows = rowMatrix(DetectionPolicy::DefiniteOnly, /*withSerial=*/true);
  return w;
}

}  // namespace

const std::vector<std::string>& scenarioNames() {
  static const std::vector<std::string> names = {
      "ram64_seq1",  "ram64_seq2",     "ram256_seq1",   "fuzz_small",
      "fuzz_medium", "fuzz_large",     "ram256_seq1_j4", "fuzz_large_j4",
      "fuzz_xlarge_seq", "seu_ram256",
  };
  return names;
}

bool isScenario(const std::string& name) {
  for (const std::string& n : scenarioNames()) {
    if (n == name) return true;
  }
  return false;
}

Workload buildScenarioWorkload(const std::string& name) {
  if (name == "ram64_seq1") {
    return ramScenario(name, ram64Config(), /*seq2=*/false, /*withSerial=*/true,
                       "RAM64, test sequence 1 (paper Fig. 1: 428 faults, "
                       "407 patterns)");
  }
  if (name == "ram64_seq2") {
    return ramScenario(name, ram64Config(), /*seq2=*/true, /*withSerial=*/true,
                       "RAM64, test sequence 2 (paper Fig. 2: row/column "
                       "marches omitted)");
  }
  if (name == "ram256_seq1") {
    // The serial replay of the full RAM256 universe costs tens of concurrent
    // runs (the paper itself only *estimated* it, footnote p. 717); the
    // serial point is covered by the fuzz scenarios and RAM64.
    Workload w = ramScenario(name, ram256Config(), /*seq2=*/false,
                             /*withSerial=*/false,
                             "RAM256, test sequence 1 (paper Fig. 3 / scaling "
                             "study: 1398 faults, 1447 patterns)");
    // Lane-batched rows: the RAM fault universe enumerates both stuck-at
    // polarities per storage node back to back, so adjacent circuit ids
    // share vicinities often. Gated for bit-identity (equal checksums and
    // nodeEvals vs the scalar rows) and for the share-backoff keeping the
    // matching overhead bounded; see docs/BENCHMARKING.md for the measured
    // lane-row record.
    w.rows.push_back({Backend::Concurrent, 1, DetectionPolicy::AnyDifference,
                      true, 0, 32});
    w.rows.push_back({Backend::Concurrent, 4, DetectionPolicy::AnyDifference,
                      true, 0, 32});
    // History-schedule rows: laid out by the detection record the earlier
    // contiguous sharded rows of this scenario published into the shared
    // per-scenario history store (bench_runner attaches it to every row).
    // Hard-to-detect faults are co-batched so cheap batches early-exit their
    // replay; checksums and nodeEvals must equal the contiguous rows' —
    // the policy only permutes batch membership.
    w.rows.push_back({Backend::Concurrent, 4, DetectionPolicy::AnyDifference,
                      true, 0, 1, false, sched::SchedulePolicy::History});
    w.rows.push_back({Backend::Concurrent, 4, DetectionPolicy::AnyDifference,
                      true, 0, 32, false, sched::SchedulePolicy::History});
    return w;
  }
  if (name == "fuzz_small") {
    return fuzzScenario(name, fuzzGen(11, 16, 5, 32, 16),
                        "generated switch-level workload, small (16 storage "
                        "nodes, 32 faults)");
  }
  if (name == "fuzz_medium") {
    return fuzzScenario(name, fuzzGen(12, 48, 7, 96, 24),
                        "generated switch-level workload, medium (48 storage "
                        "nodes, 96 faults)");
  }
  if (name == "fuzz_large") {
    Workload w = fuzzScenario(name, fuzzGen(13, 120, 8, 240, 32),
                              "generated switch-level workload, large (120 "
                              "storage nodes, 240 faults)");
    // Lane-sharing coverage on an irregular generated circuit (equal row
    // checksums and nodeEvals vs the scalar rows gate bit-identity in CI).
    w.rows.push_back({Backend::Concurrent, 1, DetectionPolicy::DefiniteOnly,
                      true, 0, 32});
    // History-schedule coverage on an irregular generated circuit (seeded by
    // the contiguous sharded rows above; bit-identity gated like the lane
    // rows).
    w.rows.push_back({Backend::Concurrent, 4, DetectionPolicy::DefiniteOnly,
                      true, 0, 1, false, sched::SchedulePolicy::History});
    return w;
  }
  // Parallel speedup trackers: exactly two rows — the jobs=1 concurrent
  // headline and the checkpointed work-stealing jobs=4 runner — so the
  // jobs=4/jobs=1 wall-clock ratio is a number CI records and gates on.
  if (name == "ram256_seq1_j4") {
    Workload w = ramScenario(name, ram256Config(), /*seq2=*/false,
                             /*withSerial=*/false,
                             "RAM256 seq1 parallel speedup tracker: "
                             "concurrent jobs=1 vs checkpointed sharded "
                             "jobs=4");
    w.rows = {{Backend::Concurrent, 1, DetectionPolicy::AnyDifference, true},
              {Backend::Concurrent, 4, DetectionPolicy::AnyDifference, true}};
    return w;
  }
  if (name == "fuzz_large_j4") {
    Workload w = fuzzScenario(name, fuzzGen(13, 120, 8, 240, 32),
                              "fuzz_large parallel speedup tracker: "
                              "concurrent jobs=1 vs checkpointed sharded "
                              "jobs=4");
    w.rows = {{Backend::Concurrent, 1, DetectionPolicy::DefiniteOnly, true},
              {Backend::Concurrent, 4, DetectionPolicy::DefiniteOnly, true}};
    return w;
  }
  // Huge-sequence scale tracker: the workload class the streaming pattern
  // path and the checkpoint spill store exist for. A small circuit driven by
  // a million-pattern sequence makes the good-machine trace dwarf the
  // circuit by orders of magnitude, so the sequence is never materialized —
  // every row pulls patterns from a GeneratedPatternSource — and the
  // sharded row records/replays a disk-spilled streamed checkpoint under a
  // deliberately small budget on every bench run (CI included). The jobs=1
  // row streams with no checkpoint at all, so equal row checksums prove the
  // spill + streamed-replay path bit-exact on every measurement.
  if (name == "fuzz_xlarge_seq") {
    GenOptions gen = fuzzGen(17, 10, 4, 16, 1000000);
    gen.maxSettingsPerPattern = 1;  // bound the settle index, not the trace
    GeneratedStreamWorkload g = generateWorkloadStream(gen);
    Workload w;
    w.scenario = name;
    w.description =
        "huge-sequence scale tracker: 1M generated patterns streamed (never "
        "materialized); sharded row replays a disk-spilled checkpoint under "
        "an 8 MiB budget";
    w.net = std::move(g.net);
    w.faults = std::move(g.faults);
    w.streamConfig = std::move(g.seqConfig);
    w.rows = {{Backend::Concurrent, 1, DetectionPolicy::DefiniteOnly, true},
              {Backend::Concurrent, 2, DetectionPolicy::DefiniteOnly, true}};
    w.checkpointBudgetBytes = std::size_t{8} << 20;
    return w;
  }
  // Transient-fault (SEU) grading campaign on the big RAM: 32 bit-flips
  // clustered onto 4 distinct instants of test sequence 1. Every row grades
  // the same campaign; the replay rows share one good-machine recording and
  // simulate only post-injection tails, the naive row simulates the full
  // sequence from scratch once per injection — the replay/naive wall-clock
  // ratio is the campaign speedup number docs/BENCHMARKING.md records, and
  // equal row checksums gate the SEU oracle on every bench run.
  if (name == "seu_ram256") {
    Workload w;
    w.scenario = name;
    w.description =
        "RAM256 SEU grading campaign: 32 transient bit-flips on 4 instants; "
        "checkpoint-replay tails (jobs/lane variants) vs naive from-scratch "
        "baseline";
    RamCircuit ram = buildRam(ram256Config());
    w.seq = ramTestSequence1(ram);
    w.net = std::move(ram.net);
    SeuGenOptions g;
    g.seed = 2026;
    g.numInjections = 32;
    g.numPatterns = w.seq.size();
    g.maxInstants = 4;
    g.pulseProbability = 0.25;
    g.maxPulse = 3;
    w.seuCampaign = generateSeuCampaign(w.net, g);
    const DetectionPolicy policy = DetectionPolicy::AnyDifference;
    w.rows = {{Backend::Concurrent, 1, policy, true},
              {Backend::Concurrent, 4, policy, true},
              {Backend::Concurrent, 1, policy, true, 0, 32},
              {Backend::Concurrent, 1, policy, true, 0, 1, /*seuNaive=*/true}};
    return w;
  }
  throw Error("unknown benchmark scenario '" + name + "' (see scenarioNames())");
}

}  // namespace fmossim::perf
