#include "perf/bench_runner.hpp"

#include <algorithm>
#include <cmath>
#include <ctime>
#include <thread>

#include "core/row_sink.hpp"
#include "seu/seu_campaign.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace fmossim::perf {

namespace {

/// Median + sample stddev of the measured repetitions, into the row.
void fillTiming(BenchRow& row, const std::vector<double>& ms) {
  std::vector<double> sorted = ms;
  std::sort(sorted.begin(), sorted.end());
  row.medianMs = sorted[sorted.size() / 2];
  if (sorted.size() % 2 == 0) {
    row.medianMs = 0.5 * (row.medianMs + sorted[sorted.size() / 2 - 1]);
  }
  double mean = 0.0;
  for (const double v : ms) mean += v;
  mean /= double(ms.size());
  double var = 0.0;
  for (const double v : ms) var += (v - mean) * (v - mean);
  row.stddevMs = ms.size() > 1 ? std::sqrt(var / double(ms.size() - 1)) : 0.0;
}

}  // namespace

void fillHostInfo(ScenarioResult& r) {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    r.hostTimestamp = format("%04d-%02d-%02dT%02d:%02d:%02dZ",
                             utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday,
                             utc.tm_hour, utc.tm_min, utc.tm_sec);
  }
  r.hostHardwareConcurrency = std::thread::hardware_concurrency();
#ifdef NDEBUG
  r.hostBuildType = "release";
#else
  r.hostBuildType = "debug";
#endif
}

std::uint64_t resultChecksum(const FaultSimResult& res) {
  std::uint64_t h = kFnvOffsetBasis;
  fnvMix(h, res.numFaults);
  fnvMix(h, res.numDetected);
  fnvMix(h, res.potentialDetections);
  for (const std::int32_t at : res.detectedAtPattern) {
    fnvMix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(at)));
  }
  if (res.perPattern.empty() && res.numPatterns > 0) {
    // Rowless streaming result: fold the derived triples, which are exactly
    // what a materialized run would have recorded (see core/row_sink.hpp) —
    // streamed and materialized checksums therefore compare equal.
    forEachDerivedRow(res, [&](std::uint64_t, std::uint32_t newly,
                               std::uint32_t cumulative, std::uint32_t alive) {
      fnvMix(h, newly);
      fnvMix(h, cumulative);
      fnvMix(h, alive);
    });
  } else {
    for (const PatternStat& st : res.perPattern) {
      fnvMix(h, st.newlyDetected);
      fnvMix(h, st.cumulativeDetected);
      fnvMix(h, st.aliveAfter);
    }
  }
  for (const State s : res.finalGoodStates) {
    fnvMix(h, static_cast<std::uint64_t>(s));
  }
  return h;
}

BenchRunner::BenchRunner(BenchConfig config) : config_(std::move(config)) {}

std::vector<std::string> BenchRunner::selectedScenarios() const {
  if (config_.only.empty()) return scenarioNames();
  for (const std::string& name : config_.only) {
    if (!isScenario(name)) {
      throw Error("unknown benchmark scenario '" + name +
                  "' (run `fmossim_cli bench --list`)");
    }
  }
  // Honor registry order regardless of filter order, and drop duplicates, so
  // scenario selection is deterministic for any --scenario flag spelling.
  std::vector<std::string> out;
  for (const std::string& name : scenarioNames()) {
    if (std::find(config_.only.begin(), config_.only.end(), name) !=
        config_.only.end()) {
      out.push_back(name);
    }
  }
  return out;
}

ScenarioResult BenchRunner::runScenario(const std::string& name) const {
  return runScenario(name, nullptr);
}

ScenarioResult BenchRunner::runScenario(
    const std::string& name,
    const std::function<void(const ScenarioResult&, const BenchRow&)>& onRow)
    const {
  const Workload w = buildScenarioWorkload(name);
  ScenarioResult sr;
  sr.scenario = w.scenario;
  sr.description = w.description;
  sr.transistors = w.net.numTransistors();
  sr.nodes = w.net.numNodes();
  sr.faults = w.faults.size();
  sr.patterns = w.streamConfig
                    ? static_cast<std::uint32_t>(w.streamConfig->numPatterns)
                    : w.seq.size();

  const unsigned warmup = config_.effectiveWarmup();
  const unsigned reps = std::max(1u, config_.effectiveReps());

  // One checkpoint store per scenario, shared by every row: the good
  // machine is recorded once and the sharded-2/sharded-4 rows (plus all
  // their warmups and repetitions) replay the same trace. The store's
  // recording counter lands in the JSON so the sharing is auditable.
  CheckpointStore::Options storeOpts;
  storeOpts.budgetBytes =
      config_.checkpointBudget.value_or(w.checkpointBudgetBytes);
  auto store = std::make_shared<CheckpointStore>(storeOpts);
  sr.checkpointBudget = storeOpts.budgetBytes;
  // One detection-history store per scenario, also shared by every row: the
  // contiguous sharded rows record per-fault detection outcomes, and the
  // history-schedule rows later in the matrix are laid out by that record —
  // the same cross-row seeding a service deployment gets from its pool.
  auto history = std::make_shared<sched::HistoryStore>();

  // SEU grading scenarios measure runSeuCampaign per row instead of
  // Engine::run: the replay rows share this scenario store's single
  // good-machine recording, the naive row ignores the store entirely, and
  // every row's checksum is the campaign checksum — so the CLI's
  // cross-backend bit-identity pass gates replay == naive on every run.
  if (!w.seuCampaign.empty()) {
    for (const RowSpec& spec : w.rows) {
      seu::CampaignOptions campaignOpts;
      campaignOpts.jobs = spec.jobs;
      campaignOpts.laneWidth = spec.laneWidth;
      campaignOpts.policy = spec.policy;
      campaignOpts.naive = spec.seuNaive;
      campaignOpts.store = store;

      BenchRow row;
      row.backend = spec.seuLabel();
      row.jobs = spec.jobs;
      row.policy =
          spec.policy == DetectionPolicy::AnyDifference ? "any" : "definite";
      row.dropDetected = spec.dropDetected;
      row.laneWidth = spec.laneWidth;
      row.reps = reps;

      const auto runOnce = [&]() {
        return runSeuCampaign(w.net, w.seq, w.seuCampaign, campaignOpts);
      };
      for (unsigned i = 0; i < warmup; ++i) runOnce();

      std::vector<double> ms;
      ms.reserve(reps);
      for (unsigned i = 0; i < reps; ++i) {
        Timer t;
        const seu::CampaignResult res = runOnce();
        ms.push_back(t.seconds() * 1e3);
        if (i == 0) {
          row.checksum = res.checksum();
          row.nodeEvals = res.totalNodeEvals;
          row.numDetected = res.numDetected;
          row.numFaults =
              static_cast<std::uint32_t>(res.injections.size());
          if (!sr.seu.has_value()) {
            SeuSummary summary;
            summary.injections =
                static_cast<std::uint32_t>(res.injections.size());
            summary.instants = res.numGroups;
            summary.detected = res.numDetected;
            summary.silent = res.numSilent;
            summary.latent = res.numLatent;
            sr.seu = summary;
          }
        }
      }
      fillTiming(row, ms);
      sr.rows.push_back(std::move(row));
      if (onRow) onRow(sr, sr.rows.back());
    }
    sr.checkpointRecordings =
        static_cast<std::uint32_t>(store->recordings());
    sr.checkpointResidentBytes = store->memoryBytes();
    fillHostInfo(sr);
    return sr;
  }

  for (const RowSpec& spec : w.rows) {
    EngineOptions engineOpts = spec.engineOptions();
    engineOpts.checkpointStore = store;
    engineOpts.historyStore = history;
    Engine engine(w.net, w.faults, engineOpts);

    BenchRow row;
    row.backend = spec.label();
    row.jobs = spec.jobs;
    row.policy =
        spec.policy == DetectionPolicy::AnyDifference ? "any" : "definite";
    row.dropDetected = spec.dropDetected;
    row.laneWidth = spec.laneWidth;
    row.streamed = w.streamConfig.has_value();
    row.schedule = sched::schedulePolicyName(spec.schedule);
    row.reps = reps;

    // Streaming scenarios pull every run from one rewindable source (the
    // engine rewinds it per call); the source's fingerprint cache also keeps
    // the store-key pass from re-streaming per repetition.
    std::optional<GeneratedPatternSource> source;
    if (w.streamConfig) source.emplace(*w.streamConfig);
    const auto runOnce = [&]() {
      return source ? engine.runStream(*source) : engine.run(w.seq);
    };

    for (unsigned i = 0; i < warmup; ++i) runOnce();

    std::vector<double> ms;
    ms.reserve(reps);
    for (unsigned i = 0; i < reps; ++i) {
      // Time the complete repeatable run (fresh session per call), including
      // engine construction and the initial settle — the cost a user pays.
      Timer t;
      const FaultSimResult res = runOnce();
      ms.push_back(t.seconds() * 1e3);
      if (i == 0) {
        row.checksum = resultChecksum(res);
        row.nodeEvals = res.totalNodeEvals;
        row.numDetected = res.numDetected;
        row.numFaults = res.numFaults;
      }
    }
    fillTiming(row, ms);
    sr.rows.push_back(std::move(row));
    if (onRow) onRow(sr, sr.rows.back());
  }
  sr.checkpointRecordings =
      static_cast<std::uint32_t>(store->recordings());
  sr.checkpointResidentBytes = store->memoryBytes();
  fillHostInfo(sr);
  return sr;
}

std::vector<ScenarioResult> BenchRunner::runAll(
    const std::function<void(const ScenarioResult&, const BenchRow&)>& onRow)
    const {
  std::vector<ScenarioResult> out;
  for (const std::string& name : selectedScenarios()) {
    out.push_back(runScenario(name, onRow));
  }
  return out;
}

}  // namespace fmossim::perf
