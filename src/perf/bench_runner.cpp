#include "perf/bench_runner.hpp"

#include <algorithm>
#include <cmath>

#include "util/timer.hpp"

namespace fmossim::perf {

namespace {

inline void fnv(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v, byte-order independent.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

}  // namespace

std::uint64_t resultChecksum(const FaultSimResult& res) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  fnv(h, res.numFaults);
  fnv(h, res.numDetected);
  fnv(h, res.potentialDetections);
  for (const std::int32_t at : res.detectedAtPattern) {
    fnv(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(at)));
  }
  for (const PatternStat& st : res.perPattern) {
    fnv(h, st.newlyDetected);
    fnv(h, st.cumulativeDetected);
    fnv(h, st.aliveAfter);
  }
  for (const State s : res.finalGoodStates) {
    fnv(h, static_cast<std::uint64_t>(s));
  }
  return h;
}

BenchRunner::BenchRunner(BenchConfig config) : config_(std::move(config)) {}

std::vector<std::string> BenchRunner::selectedScenarios() const {
  if (config_.only.empty()) return scenarioNames();
  for (const std::string& name : config_.only) {
    if (!isScenario(name)) {
      throw Error("unknown benchmark scenario '" + name +
                  "' (run `fmossim_cli bench --list`)");
    }
  }
  // Honor registry order regardless of filter order, and drop duplicates, so
  // scenario selection is deterministic for any --scenario flag spelling.
  std::vector<std::string> out;
  for (const std::string& name : scenarioNames()) {
    if (std::find(config_.only.begin(), config_.only.end(), name) !=
        config_.only.end()) {
      out.push_back(name);
    }
  }
  return out;
}

ScenarioResult BenchRunner::runScenario(const std::string& name) const {
  return runScenario(name, nullptr);
}

ScenarioResult BenchRunner::runScenario(
    const std::string& name,
    const std::function<void(const ScenarioResult&, const BenchRow&)>& onRow)
    const {
  const Workload w = buildScenarioWorkload(name);
  ScenarioResult sr;
  sr.scenario = w.scenario;
  sr.description = w.description;
  sr.transistors = w.net.numTransistors();
  sr.nodes = w.net.numNodes();
  sr.faults = w.faults.size();
  sr.patterns = w.seq.size();

  const unsigned warmup = config_.effectiveWarmup();
  const unsigned reps = std::max(1u, config_.effectiveReps());

  for (const RowSpec& spec : w.rows) {
    Engine engine(w.net, w.faults, spec.engineOptions());

    BenchRow row;
    row.backend = spec.label();
    row.jobs = spec.jobs;
    row.policy =
        spec.policy == DetectionPolicy::AnyDifference ? "any" : "definite";
    row.dropDetected = spec.dropDetected;
    row.reps = reps;

    for (unsigned i = 0; i < warmup; ++i) engine.run(w.seq);

    std::vector<double> ms;
    ms.reserve(reps);
    for (unsigned i = 0; i < reps; ++i) {
      // Time the complete repeatable run (fresh session per call), including
      // engine construction and the initial settle — the cost a user pays.
      Timer t;
      const FaultSimResult res = engine.run(w.seq);
      ms.push_back(t.seconds() * 1e3);
      if (i == 0) {
        row.checksum = resultChecksum(res);
        row.nodeEvals = res.totalNodeEvals;
        row.numDetected = res.numDetected;
        row.numFaults = res.numFaults;
      }
    }
    std::vector<double> sorted = ms;
    std::sort(sorted.begin(), sorted.end());
    row.medianMs = sorted[sorted.size() / 2];
    if (sorted.size() % 2 == 0) {
      row.medianMs = 0.5 * (row.medianMs + sorted[sorted.size() / 2 - 1]);
    }
    double mean = 0.0;
    for (const double v : ms) mean += v;
    mean /= double(ms.size());
    double var = 0.0;
    for (const double v : ms) var += (v - mean) * (v - mean);
    row.stddevMs = ms.size() > 1 ? std::sqrt(var / double(ms.size() - 1)) : 0.0;

    sr.rows.push_back(std::move(row));
    if (onRow) onRow(sr, sr.rows.back());
  }
  return sr;
}

std::vector<ScenarioResult> BenchRunner::runAll(
    const std::function<void(const ScenarioResult&, const BenchRow&)>& onRow)
    const {
  std::vector<ScenarioResult> out;
  for (const std::string& name : selectedScenarios()) {
    out.push_back(runScenario(name, onRow));
  }
  return out;
}

}  // namespace fmossim::perf
