/// \file
/// Schema-versioned JSON serialization for benchmark results.
///
/// toJson() renders a ScenarioResult as the BENCH_<scenario>.json format
/// documented in docs/BENCHMARKING.md; parseBenchJson() reads it back (used
/// by the schema round-trip tests and by external tooling that wants to
/// consume the files without a JSON library dependency in this repo).
///
/// The checksum field is serialized as a hex *string* ("0x1f2e...") because
/// a 64-bit value does not survive the double-precision number
/// representation of most JSON consumers.
#pragma once

#include <string>
#include <vector>

#include "perf/bench_runner.hpp"

namespace fmossim::perf {

/// Renders one scenario result as pretty-printed JSON (trailing newline).
std::string toJson(const ScenarioResult& result);

/// Parses a BENCH_<scenario>.json document produced by toJson(). Throws
/// Error on malformed input or schema-version mismatch.
ScenarioResult parseBenchJson(const std::string& text);

/// The file name a scenario's results are written to ("BENCH_<scenario>.json").
std::string benchFileName(const std::string& scenario);

/// Writes `result` to `<outDir>/BENCH_<scenario>.json` and returns the path.
/// Throws Error if the file cannot be written.
std::string writeBenchFile(const ScenarioResult& result,
                           const std::string& outDir);

}  // namespace fmossim::perf
