/// \file
/// Benchmark regression gate — compares fresh measurements against
/// checked-in BENCH_<scenario>.json baselines (the CI step that makes a
/// performance regression fail a PR instead of rotting silently).
///
/// Two classes of check:
///
///   * **Exact** (machine-independent): result checksum, deterministic
///     nodeEvals work counter, detection counts and workload shape must
///     match the baseline bit for bit. Any drift means the simulation
///     changed semantically (or the baselines were not refreshed with the
///     code change) and always fails the gate.
///   * **Wall clock** (machine-dependent): a row's fresh median may not
///     exceed the baseline median by more than the configured tolerance.
///     Faster is always fine. The tolerance is the override knob for noisy
///     or differently-sized runners — CI passes a generous value because
///     hosted runners differ from the machine that recorded the baselines;
///     see docs/BENCHMARKING.md.
///
/// Rows are matched by (backend, jobs, policy, dropDetected); a row present
/// on one side only fails the gate (the matrix changed without a baseline
/// refresh).
#pragma once

#include <string>
#include <vector>

#include "perf/bench_runner.hpp"

namespace fmossim::perf {

/// Gate configuration.
struct CheckOptions {
  /// Directory holding the baseline BENCH_<scenario>.json files.
  std::string baselineDir = ".";
  /// Maximum tolerated wall-clock regression, percent of the baseline
  /// median (15 = fail if fresh median > 1.15 x baseline median).
  double tolerancePct = 15.0;
  /// When true (an unfiltered run), every BENCH_*.json in baselineDir must
  /// correspond to a fresh scenario — a stale baseline for a removed or
  /// renamed scenario fails the gate instead of rotting silently. Leave
  /// false for --scenario-filtered runs, where most baselines are
  /// legitimately absent from the fresh set.
  bool expectComplete = false;
};

/// One gate violation.
struct CheckIssue {
  std::string scenario;  ///< scenario the issue is in
  std::string row;       ///< row label ("concurrent policy=any drop=yes"), or
                         ///< empty for scenario-level issues
  std::string detail;    ///< human-readable description
};

/// Result of a gate run.
struct CheckReport {
  std::vector<CheckIssue> issues;  ///< empty means the gate passes
  unsigned rowsChecked = 0;        ///< rows compared across all scenarios
  /// True if every check passed.
  bool ok() const { return issues.empty(); }
};

/// Compares one fresh scenario result against its baseline (pure function;
/// the unit-testable core of the gate). Appends issues to `report`.
void checkScenarioAgainstBaseline(const ScenarioResult& fresh,
                                  const ScenarioResult& baseline,
                                  double tolerancePct, CheckReport& report);

/// Shape-validates a service benchmark file (a baseline carrying a
/// `service` object, e.g. BENCH_serve_mixed.json). Service benchmarks have
/// no registry scenario to re-run, so the gate cannot compare them against
/// fresh numbers; instead it checks internal consistency — non-empty rows,
/// positive request count and throughput, ordered latency percentiles
/// (p50 <= p95 <= p99), at least one good-machine recording and a non-zero
/// result checksum. Appends issues to `report`.
void checkServiceBaselineShape(const ScenarioResult& baseline,
                               CheckReport& report);

/// Runs the gate: for every fresh scenario result, loads
/// `<baselineDir>/BENCH_<scenario>.json` and compares. A missing or
/// unparsable baseline file is itself a gate failure.
CheckReport checkAgainstBaselines(const std::vector<ScenarioResult>& fresh,
                                  const CheckOptions& options);

}  // namespace fmossim::perf
