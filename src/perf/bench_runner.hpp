/// \file
/// BenchRunner — the reproducible performance harness.
///
/// Wraps the Engine API: for every named scenario (scenarios.hpp) it runs
/// the scenario's configuration matrix with warmup + repetition, reports
/// median and standard deviation of wall-clock time plus the deterministic
/// work counter, and computes a result checksum over the semantically
/// meaningful result fields (detections, per-pattern detection rows, final
/// good states) so bit-identity across backends and across optimization PRs
/// is visible in the emitted numbers themselves.
///
/// Results serialize to schema-versioned BENCH_<scenario>.json files
/// (bench_json.hpp); docs/BENCHMARKING.md documents the schema and CI
/// uploads the files as artifacts.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "perf/scenarios.hpp"

namespace fmossim::perf {

/// Harness knobs. The defaults are the full measurement configuration; smoke
/// mode (CI, ctest) drops to one repetition with no warmup so the harness
/// stays exercised without costing minutes.
struct BenchConfig {
  unsigned warmup = 1;  ///< unmeasured runs before the measured repetitions
  unsigned reps = 5;    ///< measured repetitions per row (median reported)
  /// Smoke mode: forces warmup = 0, reps = 1 (harness self-test speed).
  bool smoke = false;
  /// Scenario-name filter; empty means every registered scenario, in
  /// scenarioNames() order. Unknown names throw Error.
  std::vector<std::string> only;
  /// Overrides every scenario's checkpoint-store memory budget (bytes; 0 =
  /// unbounded) when set — the CLI's `--checkpoint-budget`. Unset keeps each
  /// scenario's own Workload::checkpointBudgetBytes.
  std::optional<std::size_t> checkpointBudget;

  /// Warmup runs actually performed (0 in smoke mode).
  unsigned effectiveWarmup() const { return smoke ? 0 : warmup; }
  /// Measured repetitions actually performed (1 in smoke mode).
  unsigned effectiveReps() const { return smoke ? 1 : reps; }
};

/// One measured (scenario, configuration) cell.
struct BenchRow {
  std::string backend;  ///< "serial", "concurrent", "sharded-<jobs>" (plus a
                        ///< "-lanes<w>" suffix for lane-batched rows)
  unsigned jobs = 1;    ///< shard count (1 for serial/plain concurrent)
  std::string policy;   ///< "any" or "definite"
  bool dropDetected = true;  ///< drop faulty circuits once detected
  std::uint32_t laneWidth = 1;  ///< fault-lane sharing window (1 = scalar)
  /// True when the row ran through Engine::runStream over a pattern source
  /// (Workload::streamConfig) instead of a materialized sequence. The
  /// checksum stays comparable either way: resultChecksum folds the derived
  /// row triples for rowless streaming results.
  bool streamed = false;
  /// Batch-layout policy the row ran under ("contiguous" or "history").
  /// Additive schema field: emitted only when non-default, so baselines
  /// written by older builds parse unchanged (like `streamed`).
  std::string schedule = "contiguous";
  double medianMs = 0.0;  ///< median wall-clock per full run, milliseconds
  double stddevMs = 0.0;  ///< sample stddev over the repetitions
  unsigned reps = 0;      ///< number of measured repetitions
  /// FNV-1a checksum over detections, per-pattern detection rows and final
  /// good-circuit states (resultChecksum). Equal checksums across rows mean
  /// the backends produced bit-identical results.
  std::uint64_t checksum = 0;
  std::uint64_t nodeEvals = 0;  ///< deterministic work counter (machine-free)
  std::uint32_t numDetected = 0;  ///< faults detected by the sequence
  std::uint32_t numFaults = 0;    ///< fault-universe size
};

/// Service-mode measurement summary (the `loadgen` harness's
/// BENCH_serve_mixed.json): client-observed latency percentiles and the
/// daemon-side reuse counters that make the numbers interpretable. Absent
/// from ordinary bench files.
struct ServiceSummary {
  std::uint32_t requests = 0;           ///< requests replayed
  std::uint32_t distinctWorkloads = 0;  ///< distinct (circuit, sequence) pairs
  std::uint32_t poolEngines = 0;        ///< daemon engine slots
  std::uint32_t workers = 0;            ///< daemon worker threads
  double requestsPerSec = 0.0;          ///< completed / wall time
  double p50Ms = 0.0;  ///< median client-observed latency, milliseconds
  double p95Ms = 0.0;  ///< 95th-percentile latency
  double p99Ms = 0.0;  ///< 99th-percentile latency
  std::uint64_t storeHits = 0;        ///< checkpoint-store cache hits
  std::uint64_t storeRecordings = 0;  ///< good-machine recordings performed
  std::uint64_t engineReuses = 0;     ///< requests served by a live engine
};

/// SEU campaign measurement summary (scenarios with Workload::seuCampaign):
/// the campaign shape and its outcome tally. Identical across the
/// scenario's rows (the rows are bit-identical gradings of one campaign),
/// so it is recorded once per scenario. Absent from ordinary bench files.
struct SeuSummary {
  std::uint32_t injections = 0;  ///< transient faults graded
  std::uint32_t instants = 0;    ///< distinct injection instants (= groups)
  std::uint32_t detected = 0;    ///< output mismatch at some pattern
  std::uint32_t silent = 0;      ///< reconverged, no divergence left
  std::uint32_t latent = 0;      ///< undetected but state differs at end
};

/// One scenario's complete measurement (a BENCH_<scenario>.json file).
struct ScenarioResult {
  int schemaVersion = 1;     ///< see docs/BENCHMARKING.md
  std::string scenario;      ///< registry name
  std::string description;   ///< scenario description (incl. paper reference)
  std::uint32_t transistors = 0;  ///< circuit size
  std::uint32_t nodes = 0;        ///< circuit size
  std::uint32_t faults = 0;       ///< fault-universe size
  std::uint32_t patterns = 0;     ///< test-sequence length
  std::vector<BenchRow> rows;     ///< one row per measured configuration
  /// Checkpoint-store memory budget the scenario ran under (bytes; 0 =
  /// unbounded in-memory traces).
  std::uint64_t checkpointBudget = 0;
  /// Good-machine recordings the scenario's shared checkpoint store
  /// performed across ALL its rows, warmups and repetitions — exactly 1 for
  /// any scenario with sharded rows (the cross-row sharing guarantee), 0
  /// for scenarios without them.
  std::uint32_t checkpointRecordings = 0;
  /// Resident footprint (memoryBytes()) of the store's checkpoints after
  /// the measured runs — stays within checkpointBudget when one is set.
  std::uint64_t checkpointResidentBytes = 0;
  /// Measurement host provenance (additive: absent fields parse as empty,
  /// so older baselines stay readable). UTC timestamp, "YYYY-MM-DDTHH:MM:SSZ".
  std::string hostTimestamp;
  /// std::thread::hardware_concurrency() on the measuring host (0 = unknown).
  std::uint32_t hostHardwareConcurrency = 0;
  /// "release" or "debug" (from NDEBUG); empty = unknown (pre-host baseline).
  std::string hostBuildType;
  /// Service-mode summary; set only by the loadgen harness.
  std::optional<ServiceSummary> service;
  /// SEU campaign summary; set only for SEU grading scenarios.
  std::optional<SeuSummary> seu;
};

/// Stamps the host provenance fields (timestamp, hardware concurrency, build
/// type) into a result; used by both the bench runner and the loadgen
/// harness so every emitted BENCH file records where it was measured.
void fillHostInfo(ScenarioResult& r);

/// Checksum of the backend-invariant result fields (the same fields the
/// differential oracle compares): per-fault detecting patterns, detection
/// counts, potential detections, per-pattern detection rows, final
/// good-circuit states. FNV-1a, stable across platforms. For a rowless
/// streaming result (perPattern empty, numPatterns > 0) the per-pattern
/// triples are folded from the derived rows (core/row_sink.hpp), so a
/// streamed run's checksum equals the materialized run's exactly.
std::uint64_t resultChecksum(const FaultSimResult& res);

/// Runs the scenario matrix; see the file comment.
class BenchRunner {
 public:
  /// Constructs a runner with the given measurement configuration.
  explicit BenchRunner(BenchConfig config = {});

  /// The configuration this runner measures with.
  const BenchConfig& config() const { return config_; }

  /// The scenarios this runner will measure, honoring config().only, in
  /// deterministic registry order. Throws Error on unknown filter names.
  std::vector<std::string> selectedScenarios() const;

  /// Measures one scenario (every row in its matrix).
  ScenarioResult runScenario(const std::string& name) const;

  /// Like runScenario(); `onRow` fires live after each measured row.
  ScenarioResult runScenario(
      const std::string& name,
      const std::function<void(const ScenarioResult&, const BenchRow&)>&
          onRow) const;

  /// Measures every selected scenario. `onRow` (optional) fires after each
  /// measured row for live progress reporting.
  std::vector<ScenarioResult> runAll(
      const std::function<void(const ScenarioResult&, const BenchRow&)>&
          onRow = nullptr) const;

 private:
  BenchConfig config_;
};

}  // namespace fmossim::perf
