// ISCAS-85 flow: parse a public .bench netlist, expand it to a CMOS
// switch-level network, and measure random-pattern fault coverage.
//
//   $ ./build/examples/iscas_fault_coverage             # embedded c17
//   $ ./build/examples/iscas_fault_coverage my.bench    # any .bench file
//
// Beyond the classical gate-output stuck-at universe, the switch-level model
// also simulates per-transistor stuck-open faults — which turn combinational
// CMOS gates into sequential elements and generally *cannot* be represented
// at the gate level (paper §1).
#include <cstdio>

#include "api/engine.hpp"
#include "faults/universe.hpp"
#include "netlist/bench_format.hpp"
#include "netlist/gate_expand.hpp"
#include "patterns/random_patterns.hpp"
#include "util/rng.hpp"

using namespace fmossim;

int main(int argc, char** argv) {
  const GateCircuit gates = (argc > 1) ? loadBenchFile(argv[1])
                                       : parseBench(kIscas85C17, "c17");
  std::printf("circuit %s: %zu inputs, %zu outputs, %zu gates\n",
              gates.name.empty() ? "c17" : gates.name.c_str(),
              gates.inputs.size(), gates.outputs.size(), gates.numGates());

  const ExpandedCircuit ex = expandToCmos(gates);
  std::printf("expanded: %u transistors, %u nodes\n\n",
              ex.net.numTransistors(), ex.net.numNodes());

  // Two fault universes: classical gate-level stuck-ats, and the
  // switch-level transistor stuck-open/closed universe.
  const FaultList classical = gateLevelStuckFaults(gates, ex);
  const FaultList transistor = allTransistorStuckFaults(ex.net);

  // Random patterns; rails driven in every pattern.
  Rng rng(1985);
  TestSequence seq = randomPatterns(ex.inputs, {.numPatterns = 64}, rng);
  for (const NodeId out : ex.outputs) seq.addOutput(out);
  {
    // Prepend rails to the first pattern.
    InputSetting rails;
    rails.set(ex.net.nodeByName("Vdd"), State::S1);
    rails.set(ex.net.nodeByName("Gnd"), State::S0);
    TestSequence withRails;
    withRails.setOutputs(seq.outputs());
    for (std::uint32_t i = 0; i < seq.size(); ++i) {
      Pattern p = seq[i];
      p.settings.insert(p.settings.begin(), rails);
      withRails.addPattern(std::move(p));
    }
    seq = withRails;
  }

  for (const auto& [label, universe] :
       {std::pair{"gate-level stuck-at", &classical},
        std::pair{"transistor stuck-open/closed", &transistor}}) {
    Engine engine(ex.net, *universe, {.backend = Backend::Concurrent});
    const FaultSimResult res = engine.run(seq);
    std::printf("%-32s %u faults, coverage %5.1f%%, potential (X) %llu\n",
                label, res.numFaults, 100.0 * res.coverage(),
                (unsigned long long)res.potentialDetections);

    // Coverage curve at a few checkpoints.
    std::printf("  patterns:");
    for (const std::uint32_t at : {3u, 7u, 15u, 31u, 63u}) {
      if (at < res.perPattern.size()) {
        std::printf("  %u->%u", at + 1, res.perPattern[at].cumulativeDetected);
      }
    }
    std::printf("  (cumulative detections)\n");
  }

  std::printf(
      "\nNote the stuck-open universe converges more slowly: detecting a\n"
      "stuck-open CMOS transistor needs a two-pattern sequence (initialize,\n"
      "then expose the floating output), which random patterns only supply\n"
      "by chance — the sequential behaviour the paper's introduction\n"
      "motivates.\n");
  return 0;
}
