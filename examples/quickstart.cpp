// Quickstart: build a small switch-level circuit, simulate it, inject
// faults, and run a concurrent fault simulation.
//
//   $ ./build/examples/quickstart
//
// The circuit is a 2-input CMOS multiplexer built from a transmission-gate
// pair plus an output buffer — exactly the kind of pass-transistor structure
// gate-level fault simulators cannot model faithfully.
#include <cstdio>

#include "api/engine.hpp"
#include "circuits/cells.hpp"
#include "faults/universe.hpp"
#include "switch/builder.hpp"
#include "switch/logic_sim.hpp"

using namespace fmossim;

int main() {
  // 1. Describe the circuit, transistor by transistor (or via the cell
  //    library). Nodes are charge-storing; transistors are bidirectional
  //    switches.
  NetworkBuilder b;
  CmosCells cells(b);
  const NodeId a = b.addInput("a");
  const NodeId bIn = b.addInput("b");
  const NodeId sel = b.addInput("sel");
  const NodeId selBar = cells.inverter(sel, "selBar");
  const NodeId mid = b.addNode("mid");
  cells.transmissionGate(sel, selBar, a, mid);     // sel=1 passes a
  cells.transmissionGate(selBar, sel, bIn, mid);   // sel=0 passes b
  const NodeId out = cells.buffer(mid, "out");
  const Network net = b.build();
  std::printf("circuit: %u transistors, %u nodes\n", net.numTransistors(),
              net.numNodes());

  // 2. Logic-simulate the good circuit (MOSSIM II style).
  LogicSimulator sim(net);
  sim.setInput(net.nodeByName("Vdd"), State::S1);
  sim.setInput(net.nodeByName("Gnd"), State::S0);
  sim.setInput(a, State::S1);
  sim.setInput(bIn, State::S0);
  sim.setInput(sel, State::S1);
  sim.settle();
  std::printf("mux(sel=1): out=%c (expect 1)\n", stateChar(sim.state(out)));
  sim.setInput(sel, State::S0);
  sim.settle();
  std::printf("mux(sel=0): out=%c (expect 0)\n", stateChar(sim.state(out)));

  // 3. Build a fault universe: every storage node stuck-at-0/1 plus every
  //    transistor stuck-open/closed.
  FaultList faults = allStorageNodeStuckFaults(net);
  faults.append(allTransistorStuckFaults(net));
  std::printf("fault universe: %u faults\n", faults.size());

  // 4. Define a test sequence. Each pattern is a batch of input settings;
  //    the output node is observed after each pattern.
  TestSequence seq;
  seq.addOutput(out);
  const State vecs[][3] = {
      // a, b, sel
      {State::S1, State::S0, State::S1},
      {State::S0, State::S1, State::S1},
      {State::S1, State::S0, State::S0},
      {State::S0, State::S1, State::S0},
      {State::S1, State::S1, State::S0},
      {State::S0, State::S0, State::S1},
  };
  for (const auto& v : vecs) {
    Pattern p;
    InputSetting s;
    s.set(net.nodeByName("Vdd"), State::S1);
    s.set(net.nodeByName("Gnd"), State::S0);
    s.set(a, v[0]);
    s.set(bIn, v[1]);
    s.set(sel, v[2]);
    p.settings.push_back(std::move(s));
    seq.addPattern(std::move(p));
  }

  // 5. Run a fault simulation through the Engine facade. The backend is
  //    selectable (Backend::Serial replays each fault individually;
  //    Backend::Concurrent simulates all faults by difference; jobs > 1
  //    shards the concurrent run across threads) and runs are repeatable.
  Engine engine(net, faults, {.backend = Backend::Concurrent});
  const FaultSimResult res = engine.run(seq);
  std::printf("\n%-10s %-10s %s\n", "pattern", "detected", "cumulative");
  for (const PatternStat& st : res.perPattern) {
    std::printf("%-10u %-10u %u\n", st.index, st.newlyDetected,
                st.cumulativeDetected);
  }
  std::printf("\ncoverage: %u / %u faults (%.1f%%), %llu potential (X) detections\n",
              res.numDetected, res.numFaults, 100.0 * res.coverage(),
              (unsigned long long)res.potentialDetections);

  // 6. Which faults escaped? Undetected faults direct the test engineer to
  //    the circuit regions that need more patterns (paper §6).
  std::printf("\nundetected faults:\n");
  for (std::uint32_t i = 0; i < faults.size(); ++i) {
    if (res.detectedAtPattern[i] < 0) {
      std::printf("  %s\n", faults[i].name.c_str());
    }
  }
  return 0;
}
