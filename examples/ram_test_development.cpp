// Test-development workflow (paper §6): use the fault simulator to evaluate
// and improve a RAM test program.
//
// "Even when developing a test for a small section of an integrated circuit
//  ... the fault simulator provides information that is hard to obtain by
//  any other means. It quickly directs the designer to those areas of the
//  circuit that require further tests. For example ... a simple marching
//  test provided high coverage in the memory array itself, but testing the
//  control logic and peripheral circuits such as the input and output
//  latches was more difficult."
//
// We reproduce that finding: the array march alone covers the cell array
// well but misses control/peripheral faults; adding the control and
// row/column tests closes most of the gap.
#include <cstdio>
#include <map>
#include <string>

#include "circuits/ram.hpp"
#include "api/engine.hpp"
#include "faults/universe.hpp"
#include "patterns/marching.hpp"

using namespace fmossim;

namespace {

// Classifies a fault by the circuit region its node/transistor lives in.
std::string regionOf(const Network& net, const Fault& f) {
  std::string name;
  if (f.kind == FaultKind::NodeStuck) {
    name = net.node(f.node).name;
  } else {
    name = net.node(net.transistor(f.transistor).source).name;
  }
  if (name.rfind("cell", 0) == 0 || name.rfind("cmid", 0) == 0) return "memory array";
  if (name.rfind("rbl", 0) == 0 || name.rfind("wbl", 0) == 0) return "bit lines";
  if (name.rfind("rwl", 0) == 0 || name.rfind("wwl", 0) == 0 ||
      name.rfind("a", 0) == 0) {
    return "address/row decode";
  }
  if (name.rfind("col", 0) == 0 || name.rfind("rsel", 0) == 0 ||
      name.rfind("wsel", 0) == 0) {
    return "column periphery";
  }
  if (name.rfind("phi", 0) == 0 || name.rfind("WE", 0) == 0 ||
      name.rfind("din", 0) == 0) {
    return "clock/control";
  }
  if (name.rfind("out", 0) == 0 || name.rfind("dout", 0) == 0) return "output latch";
  return "other";
}

void report(const char* title, const Network& net, const FaultList& faults,
            const FaultSimResult& res) {
  std::map<std::string, std::pair<unsigned, unsigned>> byRegion;  // det, total
  for (std::uint32_t i = 0; i < faults.size(); ++i) {
    auto& [det, total] = byRegion[regionOf(net, faults[i])];
    ++total;
    if (res.detectedAtPattern[i] >= 0) ++det;
  }
  std::printf("\n%s: %.1f%% overall coverage (%u/%u)\n", title,
              100.0 * res.coverage(), res.numDetected, res.numFaults);
  for (const auto& [region, counts] : byRegion) {
    std::printf("  %-20s %4u / %4u  (%.0f%%)\n", region.c_str(), counts.first,
                counts.second, 100.0 * counts.first / counts.second);
  }
}

FaultSimResult runWith(const RamCircuit& ram, const FaultList& faults,
                       const TestSequence& seq) {
  EngineOptions opts;
  opts.policy = DetectionPolicy::AnyDifference;
  Engine engine(ram.net, faults, opts);
  return engine.run(seq);
}

}  // namespace

int main() {
  std::printf("RAM test development on RAM64 (8x8 three-transistor DRAM)\n");
  const RamCircuit ram = buildRam(ram64Config());
  FaultList faults = allStorageNodeStuckFaults(ram.net);
  for (const TransId ft : ram.bitLineShorts) {
    faults.add(Fault::faultDeviceActive(ram.net, ft));
  }
  std::printf("fault universe: %u faults\n", faults.size());

  // Attempt 1: array march only.
  TestSequence arrayOnly = ramArrayMarch(ram);
  const FaultSimResult r1 = runWith(ram, faults, arrayOnly);
  report("array march only (320 patterns)", ram.net, faults, r1);

  // Attempt 2: add the control/peripheral patterns.
  TestSequence withControl = ramControlTests(ram);
  withControl.append(ramArrayMarch(ram));
  const FaultSimResult r2 = runWith(ram, faults, withControl);
  report("control tests + array march (327 patterns)", ram.net, faults, r2);

  // Attempt 3: the full sequence with row/column marches.
  const TestSequence full = ramTestSequence1(ram);
  const FaultSimResult r3 = runWith(ram, faults, full);
  report("full sequence 1 (407 patterns)", ram.net, faults, r3);

  std::printf("\nremaining undetected faults (full sequence):\n");
  for (std::uint32_t i = 0; i < faults.size(); ++i) {
    if (r3.detectedAtPattern[i] < 0) {
      std::printf("  %-24s (%s)\n", faults[i].name.c_str(),
                  regionOf(ram.net, faults[i]).c_str());
    }
  }
  std::printf(
      "\nAs in the paper: the march handles the array; the control and\n"
      "peripheral logic needs its own patterns, and the fault simulator\n"
      "points straight at the region that needs them.\n");
  return 0;
}
