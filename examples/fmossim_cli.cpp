// fmossim_cli — command-line fault simulator driver over the unified
// Engine API.
//
//   fmossim_cli --sim <netlist.sim> --seq <sequence.txt> --faults <spec.txt>
//               [--backend serial|concurrent] [--jobs N]
//               [--policy any|definite] [--no-drop] [--csv <file>]
//               [--compare] [--quiet]
//   fmossim_cli --bench <circuit.bench> ...      (ISCAS .bench input)
//   fmossim_cli --demo                           (built-in demo run)
//   fmossim_cli fuzz --seeds N [--seed S] ...    (differential fuzzing)
//   fmossim_cli bench [--json] [--smoke] ...     (performance harness)
//   fmossim_cli serve --socket PATH ...          (fault-simulation daemon)
//   fmossim_cli loadgen (--socket PATH | --inproc) ...  (service load test)
//   fmossim_cli --help                           (full subcommand summary)
//
// The fuzz subcommand generates seeded random switch-level workloads
// (src/gen/random_circuit.hpp) and cross-checks the serial, concurrent and
// sharded backends against each other (src/gen/diff_oracle.hpp). Any
// divergence is shrunk to a minimized reproducer and re-derivable from its
// seed alone: `fuzz --seed S --seeds 1` replays one campaign member.
//
// The bench subcommand runs the reproducible performance harness
// (src/perf/): the named scenario matrix of docs/BENCHMARKING.md with
// warmup + repetition, writing schema-versioned BENCH_<scenario>.json files
// with --json, and gating fresh results against checked-in baselines with
// --check (the CI perf-regression gate; see docs/BENCHMARKING.md). Unknown
// subcommands are an error (exit 2).
//
// The serve subcommand turns the simulator into a long-lived daemon: a
// persistent engine pool over a shared good-machine checkpoint store, a
// bounded request queue drained by worker threads, and newline-delimited
// JSON over a Unix-domain socket (submit/status/result/cancel/stats/
// shutdown; see docs/SERVICE.md). The loadgen subcommand is the matching
// client harness: it replays a seeded zipf-skewed mixed-tenant workload,
// verifies every response against a direct Engine run bit for bit, and
// emits BENCH_serve_mixed.json with --json.
//
// Defaults: --backend concurrent, --jobs 1, --policy definite (a tester
// cannot distinguish an X from a driven value; pass --policy any for the
// paper's literal "any difference" criterion). --compare runs both backends
// and fails on any detection disagreement.
//
// Input formats are documented in src/netlist/sim_format.hpp,
// src/patterns/sequence_io.hpp, and src/faults/fault_spec.hpp.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>

#include "api/engine.hpp"
#include "core/estimator.hpp"
#include "faults/fault_spec.hpp"
#include "faults/transient.hpp"
#include "gen/diff_oracle.hpp"
#include "gen/random_circuit.hpp"
#include "gen/transient_gen.hpp"
#include "netlist/bench_format.hpp"
#include "netlist/gate_expand.hpp"
#include "netlist/sim_format.hpp"
#include "patterns/sequence_io.hpp"
#include "perf/bench_check.hpp"
#include "perf/bench_json.hpp"
#include "perf/bench_runner.hpp"
#include "seu/seu_campaign.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "stats/recorder.hpp"
#include "util/strings.hpp"

using namespace fmossim;

namespace {

void printUsage(std::FILE* to, const char* argv0) {
  std::fprintf(to,
               "usage: %s (--sim FILE | --bench FILE | --demo) --seq FILE "
               "--faults FILE\n"
               "          [--backend serial|concurrent (default: concurrent)]\n"
               "          [--jobs N        parallel workers (concurrent "
               "backend only)]\n"
               "          [--batch-faults N  sharded fault-batch size "
               "(default: auto)]\n"
               "          [--lane-width N  word-lane fault batching width "
               "(power of two\n"
               "                           in [1, 32], default 1; "
               "bit-identical results)]\n"
               "          [--checkpoint-budget SIZE  good-machine checkpoint "
               "memory budget\n"
               "                           (bytes, k/m/g suffix; 0 = "
               "unbounded; jobs > 1 only —\n"
               "                           spills the trace to disk and "
               "replays a sliding window)]\n"
               "          [--schedule contiguous|history  sharded batch "
               "layout (default:\n"
               "                           contiguous; history co-batches "
               "hard-to-detect faults\n"
               "                           from a recorded run; results "
               "bit-identical)]\n"
               "          [--history-file PATH  detection-history sidecar: "
               "read by\n"
               "                           --schedule history, refreshed "
               "after sharded runs]\n"
               "          [--policy any|definite (default: definite)]\n"
               "          [--no-drop] [--csv FILE] [--compare] [--quiet]\n"
               "       %s fuzz --seeds N    differential fuzzing campaign "
               "(see %s fuzz --help)\n"
               "       %s bench [--json]    performance harness over the "
               "scenario matrix\n"
               "                            (see %s bench --help)\n"
               "       %s serve --socket PATH   long-lived fault-simulation "
               "daemon\n"
               "                            (see %s serve --help)\n"
               "       %s loadgen (--socket PATH | --inproc)   service load "
               "generator\n"
               "                            (see %s loadgen --help)\n"
               "       %s seu ...           transient-fault (SEU) grading "
               "campaign\n"
               "                            (see %s seu --help)\n"
               "       %s --help            this summary\n"
               "\n"
               "subcommands:\n"
               "  fuzz    seeded random workloads cross-checked serial vs "
               "concurrent vs sharded;\n"
               "          divergences are shrunk to minimized seed "
               "reproducers\n"
               "  bench   reproducible benchmark runs (warmup + reps + "
               "median/stddev), writing\n"
               "          schema-versioned BENCH_<scenario>.json files with "
               "--json\n"
               "  serve   engine-pool daemon speaking newline-delimited JSON "
               "over a Unix\n"
               "          socket (submit/status/result/cancel/stats/shutdown; "
               "docs/SERVICE.md)\n"
               "  loadgen zipf-skewed mixed-tenant replay against a daemon, "
               "verifying every\n"
               "          response against a direct engine run; --json writes "
               "BENCH_serve_mixed.json\n"
               "  seu     transient-fault grading: bit-flips at chosen "
               "instants, classified\n"
               "          detected/silent/latent by replaying checkpointed "
               "good-machine tails\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0, argv0);
}

int usage(const char* argv0) {
  printUsage(stderr, argv0);
  return 2;
}

// Byte-size parse for --checkpoint-budget: plain bytes or a k/m/g suffix
// (binary units). Strict like the other numeric parsers: trailing garbage
// is an error, not a silently truncated budget.
std::size_t parseByteSize(const char* text, const char* flag) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || errno == ERANGE || text[0] == '-') {
    std::fprintf(stderr, "invalid size '%s' for %s\n", text, flag);
    std::exit(2);
  }
  std::size_t shift = 0;
  if (*end == 'k' || *end == 'K') shift = 10;
  else if (*end == 'm' || *end == 'M') shift = 20;
  else if (*end == 'g' || *end == 'G') shift = 30;
  if (shift != 0) ++end;
  if (*end != '\0') {
    std::fprintf(stderr, "invalid size '%s' for %s (use bytes or k/m/g)\n",
                 text, flag);
    std::exit(2);
  }
  // The suffix shift must not wrap: a silently truncated budget would force
  // the spill path the user asked to avoid.
  if (shift != 0 && v > (std::numeric_limits<std::size_t>::max() >> shift)) {
    std::fprintf(stderr, "size '%s' for %s is out of range\n", text, flag);
    std::exit(2);
  }
  return static_cast<std::size_t>(v) << shift;
}

// Strict positive-integer parse for counted flags (--jobs, --batch-faults,
// --lane-width): trailing garbage, zero, negatives and overflow are all
// errors with exit 2, never a silently clamped or truncated count.
std::uint32_t parsePositiveCount(const char* text, const char* flag,
                                 std::uint32_t maxValue) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-' ||
      v == 0 || v > maxValue) {
    std::fprintf(stderr,
                 "invalid value '%s' for %s (want an integer in [1, %u])\n",
                 text, flag, maxValue);
    std::exit(2);
  }
  return static_cast<std::uint32_t>(v);
}

// --lane-width additionally requires a power of two: lane words pack 2-bit
// states, so only power-of-two widths align fault windows.
std::uint32_t parseLaneWidth(const char* text, const char* flag) {
  const std::uint32_t v = parsePositiveCount(text, flag, 32);
  if ((v & (v - 1)) != 0) {
    std::fprintf(stderr,
                 "invalid value '%s' for %s (want a power of two in [1, 32])\n",
                 text, flag);
    std::exit(2);
  }
  return v;
}

const char* kDemoNetlist = R"(| demo: nMOS inverter chain with a pass gate
input in clk
d n1 Vdd n1
n in n1 Gnd
n clk n1 n2
d out Vdd out
n n2 out Gnd
)";

const char* kDemoSequence = R"(outputs out
pattern init
  set Vdd=1 Gnd=0 in=0 clk=1
pattern p1
  set in=1
pattern p2
  set clk=0
  set in=0
pattern p3
  set clk=1
)";

const char* kDemoFaults = R"(all-node-stuck
all-transistor-stuck
)";

int fuzzUsage(std::FILE* to, const char* argv0) {
  std::fprintf(
      to,
      "usage: %s fuzz [--seeds N      campaign size (default 25)]\n"
      "               [--seed S       first seed (default 1)]\n"
      "               [--nodes N] [--inputs N] [--faults N] [--patterns N]\n"
      "               [--policy any|definite] [--no-drop]\n"
      "               [--lane-width N pin the lane-sharing comparands to\n"
      "                               {1, N} (power of two in [1, 32];\n"
      "                               default sweeps {1, 4, 32})]\n"
      "               [--chaos N      lose every Nth concurrent trigger\n"
      "                               (oracle self-test; must find bugs)]\n"
      "               [--quiet]\n",
      argv0);
  return to == stderr ? 2 : 0;
}

int fuzzUsage(const char* argv0) { return fuzzUsage(stderr, argv0); }

int runFuzz(int argc, char** argv) {
  std::uint64_t firstSeed = 1;
  std::uint32_t numSeeds = 25;
  std::optional<std::uint32_t> nodes, inputs, faults, patterns, chaos;
  std::optional<std::uint32_t> laneWidth;
  std::optional<DetectionPolicy> policy;
  bool noDrop = false, quiet = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    // Strict decimal parse: a typo like "1O0" must be an error, not a
    // silently truncated campaign that exits 0.
    const auto nextU64 = [&]() -> std::uint64_t {
      const char* text = next();
      char* end = nullptr;
      errno = 0;
      const unsigned long long v = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-') {
        std::fprintf(stderr, "invalid number '%s' for %s\n", text, arg.c_str());
        std::exit(2);
      }
      return v;
    };
    const auto nextUint = [&]() -> std::uint32_t {
      const std::uint64_t v = nextU64();
      if (v > 0xffffffffULL) {
        std::fprintf(stderr, "value for %s out of range\n", arg.c_str());
        std::exit(2);
      }
      return static_cast<std::uint32_t>(v);
    };
    if (arg == "--help") return fuzzUsage(stdout, argv[0]);
    else if (arg == "--seeds") numSeeds = nextUint();
    else if (arg == "--seed") firstSeed = nextU64();
    else if (arg == "--nodes") nodes = nextUint();
    else if (arg == "--inputs") inputs = nextUint();
    else if (arg == "--faults") faults = nextUint();
    else if (arg == "--patterns") patterns = nextUint();
    else if (arg == "--chaos") chaos = nextUint();
    else if (arg == "--lane-width") {
      const std::uint32_t v = nextUint();
      if (v < 1 || v > 32 || (v & (v - 1)) != 0) {
        std::fprintf(stderr,
                     "invalid value '%u' for --lane-width (want a power of "
                     "two in [1, 32])\n",
                     v);
        std::exit(2);
      }
      laneWidth = v;
    }
    else if (arg == "--no-drop") noDrop = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--policy") {
      const std::string p = next();
      if (p == "any") policy = DetectionPolicy::AnyDifference;
      else if (p == "definite") policy = DetectionPolicy::DefiniteOnly;
      else return fuzzUsage(argv[0]);
    } else {
      return fuzzUsage(argv[0]);
    }
  }
  if (numSeeds == 0) return fuzzUsage(argv[0]);

  std::uint32_t failures = 0;
  std::uint64_t totalRuns = 0;
  // Iterate by offset so a huge --seed cannot wrap the end bound into a
  // zero-iteration campaign that falsely exits 0.
  for (std::uint32_t k = 0; k < numSeeds; ++k) {
    const std::uint64_t seed = firstSeed + k;
    GenOptions gen = GenOptions::randomized(seed);
    if (nodes) gen.numNodes = *nodes;
    if (inputs) gen.numInputs = *inputs;
    if (faults) gen.numFaults = *faults;
    if (patterns) gen.numPatterns = *patterns;

    OracleOptions oracle;
    // Sweep detection policy and drop mode across the campaign unless the
    // caller pinned them; the variation stream is disjoint from the
    // generator's so pinning one knob never changes the circuits.
    Rng vary(seed ^ 0xd1b54a32d192ed03ULL);
    oracle.policy = policy.value_or(vary.chance(0.5)
                                        ? DetectionPolicy::DefiniteOnly
                                        : DetectionPolicy::AnyDifference);
    oracle.dropDetected = noDrop ? false : vary.chance(0.75);
    if (laneWidth) oracle.laneVariants = {1, *laneWidth};
    if (chaos) oracle.debugLoseTriggerEvery = *chaos;

    const GeneratedWorkload w = generateWorkload(gen);
    DiffOracle diff(oracle);
    const OracleReport rep = diff.check(w);
    totalRuns += rep.checkRuns;
    if (!rep.ok) {
      ++failures;
      // The reproduce command must carry every knob that shaped this run:
      // pinned generator parameters, the policy/drop pair actually used,
      // and the chaos injector if active.
      std::string repro =
          format("%s fuzz --seed %llu --seeds 1", argv[0],
                 static_cast<unsigned long long>(seed));
      if (nodes) repro += format(" --nodes %u", *nodes);
      if (inputs) repro += format(" --inputs %u", *inputs);
      if (faults) repro += format(" --faults %u", *faults);
      if (patterns) repro += format(" --patterns %u", *patterns);
      repro += oracle.policy == DetectionPolicy::AnyDifference
                   ? " --policy any"
                   : " --policy definite";
      if (!oracle.dropDetected) repro += " --no-drop";
      if (laneWidth) repro += format(" --lane-width %u", *laneWidth);
      if (chaos) repro += format(" --chaos %u", *chaos);
      std::printf("%s\n%s  reproduce: %s\n", describeWorkload(w).c_str(),
                  rep.summary().c_str(), repro.c_str());
    } else if (!quiet && (k + 1) % 10 == 0) {
      std::printf("... %u/%u seeds done, %u divergence(s)\n", k + 1, numSeeds,
                  failures);
    }
  }
  std::printf("fuzz: %u seed(s), %u divergence(s), %llu comparison run(s)\n",
              numSeeds, failures, static_cast<unsigned long long>(totalRuns));
  return failures == 0 ? 0 : 1;
}

int benchUsage(std::FILE* to, const char* argv0) {
  std::fprintf(
      to,
      "usage: %s bench [--json          write BENCH_<scenario>.json files]\n"
      "                [--out DIR       output directory (default: .)]\n"
      "                [--scenario NAME run one scenario (repeatable)]\n"
      "                [--reps N        measured repetitions (default 5)]\n"
      "                [--warmup N      unmeasured warmup runs (default 1)]\n"
      "                [--smoke         1 rep, no warmup (CI harness check)]\n"
      "                [--checkpoint-budget SIZE  override every scenario's\n"
      "                                 checkpoint-store memory budget (bytes,\n"
      "                                 k/m/g suffix; 0 = unbounded in-memory\n"
      "                                 traces) — forces the spill/window path\n"
      "                                 when set below a trace's size]\n"
      "                [--check         gate fresh results against baseline\n"
      "                                 BENCH_*.json files (exit 1 on any\n"
      "                                 checksum/nodeEvals drift or wall-clock\n"
      "                                 regression beyond --tolerance)]\n"
      "                [--baseline DIR  baseline directory for --check\n"
      "                                 (default: .)]\n"
      "                [--tolerance P   wall-clock regression tolerance in\n"
      "                                 percent (default 15; raise on noisy\n"
      "                                 runners — exact checks stay strict)]\n"
      "                [--list          list scenarios and exit]\n"
      "                [--quiet]\n"
      "Rows with equal policy/drop settings must produce equal result\n"
      "checksums across backends; a mismatch fails the run (exit 1).\n",
      argv0);
  return to == stderr ? 2 : 0;
}

int runBench(int argc, char** argv) {
  perf::BenchConfig config;
  perf::CheckOptions checkOpts;
  std::string outDir = ".";
  bool json = false, list = false, quiet = false, check = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    const auto nextUint = [&]() -> unsigned {
      const char* text = next();
      char* end = nullptr;
      errno = 0;
      const unsigned long v = std::strtoul(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-') {
        std::fprintf(stderr, "invalid number '%s' for %s\n", text, arg.c_str());
        std::exit(2);
      }
      return static_cast<unsigned>(v);
    };
    if (arg == "--json") json = true;
    else if (arg == "--out") outDir = next();
    else if (arg == "--scenario") config.only.push_back(next());
    else if (arg == "--reps") config.reps = nextUint();
    else if (arg == "--warmup") config.warmup = nextUint();
    else if (arg == "--smoke") config.smoke = true;
    else if (arg == "--checkpoint-budget") {
      config.checkpointBudget = parseByteSize(next(), "--checkpoint-budget");
    }
    else if (arg == "--check") check = true;
    else if (arg == "--baseline") checkOpts.baselineDir = next();
    else if (arg == "--tolerance") {
      const char* text = next();
      char* end = nullptr;
      const double v = std::strtod(text, &end);
      if (end == text || *end != '\0' || v < 0.0) {
        std::fprintf(stderr, "invalid tolerance '%s'\n", text);
        return 2;
      }
      checkOpts.tolerancePct = v;
    }
    else if (arg == "--list") list = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help") return benchUsage(stdout, argv[0]);
    else return benchUsage(stderr, argv[0]);
  }
  if (config.reps == 0) {
    std::fprintf(stderr, "--reps must be >= 1\n");
    return 2;
  }
  // A mistyped scenario name is a usage error (exit 2), and the message
  // must carry the valid names so the fix is one copy-paste away.
  for (const std::string& name : config.only) {
    if (!perf::isScenario(name)) {
      std::fprintf(stderr, "error: unknown scenario '%s'\nvalid scenarios:",
                   name.c_str());
      for (const std::string& s : perf::scenarioNames()) {
        std::fprintf(stderr, " %s", s.c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
  }

  perf::BenchRunner runner(config);
  if (list) {
    for (const std::string& name : runner.selectedScenarios()) {
      const perf::Workload w = perf::buildScenarioWorkload(name);
      std::printf("%-14s %s\n", name.c_str(), w.description.c_str());
    }
    return 0;
  }

  if (!quiet) {
    std::printf("%-14s %-11s %-8s %-5s %-5s %12s %10s  %s\n", "scenario",
                "backend", "policy", "drop", "reps", "median(ms)",
                "stddev(ms)", "checksum");
  }
  const auto onRow = [&](const perf::ScenarioResult& sr,
                         const perf::BenchRow& row) {
    if (quiet) return;
    std::printf("%-14s %-11s %-8s %-5s %-5u %12.3f %10.3f  0x%016llx\n",
                sr.scenario.c_str(), row.backend.c_str(), row.policy.c_str(),
                row.dropDetected ? "yes" : "no", row.reps, row.medianMs,
                row.stddevMs, static_cast<unsigned long long>(row.checksum));
  };
  const std::vector<perf::ScenarioResult> results = runner.runAll(onRow);

  // Cross-backend bit-identity: rows that differ only in backend/jobs must
  // produce the same result checksum (the harness-level restatement of the
  // differential oracle's guarantee).
  bool identical = true;
  for (const perf::ScenarioResult& sr : results) {
    for (std::size_t a = 0; a < sr.rows.size(); ++a) {
      for (std::size_t b = a + 1; b < sr.rows.size(); ++b) {
        const perf::BenchRow& ra = sr.rows[a];
        const perf::BenchRow& rb = sr.rows[b];
        if (ra.policy == rb.policy && ra.dropDetected == rb.dropDetected &&
            ra.checksum != rb.checksum) {
          std::fprintf(stderr,
                       "checksum mismatch in %s: %s=0x%016llx vs %s=0x%016llx\n",
                       sr.scenario.c_str(), ra.backend.c_str(),
                       static_cast<unsigned long long>(ra.checksum),
                       rb.backend.c_str(),
                       static_cast<unsigned long long>(rb.checksum));
          identical = false;
        }
      }
    }
  }

  if (json) {
    for (const perf::ScenarioResult& sr : results) {
      const std::string path = perf::writeBenchFile(sr, outDir);
      if (!quiet) std::printf("wrote %s\n", path.c_str());
    }
  }
  if (!identical) {
    std::fprintf(stderr, "bench: cross-backend results NOT bit-identical\n");
    return 1;
  }
  if (check) {
    // An unfiltered run covers the whole registry, so every baseline file
    // must correspond to a live scenario (stale files fail the gate).
    checkOpts.expectComplete = config.only.empty();
    const perf::CheckReport report =
        perf::checkAgainstBaselines(results, checkOpts);
    for (const perf::CheckIssue& issue : report.issues) {
      const std::string where =
          issue.row.empty() ? issue.scenario
                            : issue.scenario + " [" + issue.row + "]";
      std::fprintf(stderr, "bench --check: %s: %s\n", where.c_str(),
                   issue.detail.c_str());
    }
    if (!report.ok()) {
      std::fprintf(stderr,
                   "bench --check: FAILED against baselines in '%s' "
                   "(%zu issue(s), %u row(s) checked, tolerance %.0f%%)\n",
                   checkOpts.baselineDir.c_str(), report.issues.size(),
                   report.rowsChecked, checkOpts.tolerancePct);
      return 1;
    }
    std::printf("bench --check: OK — %u row(s) within %.0f%% of baselines "
                "in '%s', checksums and work counters exact\n",
                report.rowsChecked, checkOpts.tolerancePct,
                checkOpts.baselineDir.c_str());
  }
  return 0;
}

int serveUsage(std::FILE* to, const char* argv0) {
  std::fprintf(
      to,
      "usage: %s serve --socket PATH   Unix-domain socket to listen on\n"
      "                [--pool N       persistent engine slots (default 4)]\n"
      "                [--workers N    job worker threads (default 2,\n"
      "                                clamped to --pool)]\n"
      "                [--queue N      queued-job bound before backpressure\n"
      "                                (default 64)]\n"
      "                [--checkpoint-budget SIZE  shared checkpoint-store\n"
      "                                memory budget (bytes, k/m/g suffix;\n"
      "                                0 = unbounded)]\n"
      "                [--store-entries N  max cached good-machine recordings\n"
      "                                (default 64, LRU-evicted)]\n"
      "                [--quiet]\n"
      "Runs until a client sends {\"verb\":\"shutdown\"}. Protocol: one JSON\n"
      "request per line, one JSON response per line (docs/SERVICE.md).\n",
      argv0);
  return to == stderr ? 2 : 0;
}

int runServe(int argc, char** argv) {
  serve::ServerOptions opts;
  std::string socketPath;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    // Counted flags go through the strict shared parser (parsePositiveCount):
    // garbage, zero, negatives and values past the cap all exit 2 — the old
    // local strtoul lambda silently truncated 64-bit values to unsigned.
    if (arg == "--socket") socketPath = next();
    else if (arg == "--pool") {
      opts.poolEngines = parsePositiveCount(next(), "--pool", 1u << 16);
    }
    else if (arg == "--workers") {
      opts.workers = parsePositiveCount(next(), "--workers", 1u << 16);
    }
    else if (arg == "--queue") {
      opts.queueBound = parsePositiveCount(next(), "--queue", 1u << 20);
    }
    else if (arg == "--checkpoint-budget") {
      opts.checkpointBudgetBytes = parseByteSize(next(), "--checkpoint-budget");
    }
    else if (arg == "--store-entries") {
      opts.storeEntries = parsePositiveCount(next(), "--store-entries",
                                             1u << 20);
    }
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help") return serveUsage(stdout, argv[0]);
    else return serveUsage(stderr, argv[0]);
  }
  if (socketPath.empty()) {
    std::fprintf(stderr, "serve: --socket PATH is required\n");
    return 2;
  }

  serve::Server server(opts);
  server.start();
  serve::SocketServer socket(server, socketPath);
  if (!quiet) {
    std::printf("serving on %s (pool %u, workers %u, queue %zu, "
                "checkpoint budget %zu bytes)\n",
                socketPath.c_str(), opts.poolEngines, opts.workers,
                opts.queueBound, opts.checkpointBudgetBytes);
    std::fflush(stdout);
  }
  socket.waitShutdown();  // a client's shutdown verb ends the accept loop
  server.stop();          // wakes blocked result waiters, joins workers
  socket.stop();          // closes remaining connections, joins their threads
  if (!quiet) {
    const serve::ServerStats stats = server.stats();
    std::printf("shutdown after %.1f s: %llu completed, %llu failed, %llu "
                "cancelled; store hits %llu, recordings %llu\n",
                stats.uptimeSeconds,
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(stats.cancelled),
                static_cast<unsigned long long>(stats.storeHits),
                static_cast<unsigned long long>(stats.storeRecordings));
  }
  return 0;
}

int loadgenUsage(std::FILE* to, const char* argv0) {
  std::fprintf(
      to,
      "usage: %s loadgen (--socket PATH | --inproc)\n"
      "                  [--seeds M       distinct circuits (default 5)]\n"
      "                  [--sequences K   test sequences per circuit "
      "(default 2)]\n"
      "                  [--requests N    requests to replay (default 50)]\n"
      "                  [--seed S        base workload seed (default 1)]\n"
      "                  [--zipf E        repeat-skew exponent (default "
      "1.1)]\n"
      "                  [--concurrency T client connections (default 4)]\n"
      "                  [--jobs J        per-request parallelism (default "
      "2)]\n"
      "                  [--no-verify     skip the direct-engine checksum "
      "oracle]\n"
      "                  [--expect-store-hits N  fail unless the daemon\n"
      "                                   reports >= N checkpoint-store "
      "hits]\n"
      "                  [--json] [--out DIR]  write BENCH_serve_mixed.json\n"
      "                  [--shutdown      send shutdown when done]\n"
      "                  [--pool N] [--workers N] [--queue N]\n"
      "                  [--checkpoint-budget SIZE]   (--inproc daemon "
      "knobs)\n"
      "                  [--quiet]\n"
      "Replays M*K distinct workloads over N zipf-skewed requests and "
      "verifies\nevery response checksum against a direct Engine run (exit 1 "
      "on any\nmismatch).\n",
      argv0);
  return to == stderr ? 2 : 0;
}

int runLoadgen(int argc, char** argv) {
  serve::LoadGenOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    const auto nextUint = [&]() -> unsigned {
      const char* text = next();
      char* end = nullptr;
      errno = 0;
      const unsigned long v = std::strtoul(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-') {
        std::fprintf(stderr, "invalid number '%s' for %s\n", text, arg.c_str());
        std::exit(2);
      }
      return static_cast<unsigned>(v);
    };
    if (arg == "--socket") opts.socketPath = next();
    else if (arg == "--inproc") opts.inproc = true;
    else if (arg == "--seeds") opts.circuits = nextUint();
    else if (arg == "--sequences") opts.sequencesPerCircuit = nextUint();
    else if (arg == "--requests") opts.requests = nextUint();
    else if (arg == "--seed") opts.baseSeed = nextUint();
    else if (arg == "--zipf") {
      const char* text = next();
      char* end = nullptr;
      const double v = std::strtod(text, &end);
      if (end == text || *end != '\0' || v < 0.0) {
        std::fprintf(stderr, "invalid zipf exponent '%s'\n", text);
        return 2;
      }
      opts.zipfExponent = v;
    }
    else if (arg == "--concurrency") opts.concurrency = nextUint();
    else if (arg == "--jobs") opts.jobs = nextUint();
    else if (arg == "--no-verify") opts.verify = false;
    else if (arg == "--expect-store-hits") opts.expectStoreHits = nextUint();
    else if (arg == "--json") opts.emitJson = true;
    else if (arg == "--out") opts.outDir = next();
    else if (arg == "--shutdown") opts.shutdownAfter = true;
    // Daemon knobs must be >= 1 and never silently truncated: same strict
    // parser (and caps) as the serve subcommand's flags.
    else if (arg == "--pool") {
      opts.inprocServer.poolEngines =
          parsePositiveCount(next(), "--pool", 1u << 16);
    }
    else if (arg == "--workers") {
      opts.inprocServer.workers =
          parsePositiveCount(next(), "--workers", 1u << 16);
    }
    else if (arg == "--queue") {
      opts.inprocServer.queueBound =
          parsePositiveCount(next(), "--queue", 1u << 20);
    }
    else if (arg == "--checkpoint-budget") {
      opts.inprocServer.checkpointBudgetBytes =
          parseByteSize(next(), "--checkpoint-budget");
    }
    else if (arg == "--quiet") opts.quiet = true;
    else if (arg == "--help") return loadgenUsage(stdout, argv[0]);
    else return loadgenUsage(stderr, argv[0]);
  }
  if (opts.socketPath.empty() && !opts.inproc) {
    std::fprintf(stderr, "loadgen: --socket PATH or --inproc is required\n");
    return 2;
  }

  const serve::LoadGenReport report = serve::runLoadGen(opts);
  if (!opts.quiet) {
    std::printf("loadgen: %u request(s) ok, %u failed over %u distinct "
                "workload(s)\n",
                report.requests, report.failures, report.distinctWorkloads);
    std::printf("         %.1f req/s; latency p50/p95/p99 = "
                "%.2f/%.2f/%.2f ms\n",
                report.requestsPerSec, report.p50Ms, report.p95Ms,
                report.p99Ms);
    std::printf("         engine reuses %llu; store hits %llu, recordings "
                "%llu; checksums %s\n",
                static_cast<unsigned long long>(report.engineReuses),
                static_cast<unsigned long long>(report.storeHits),
                static_cast<unsigned long long>(report.storeRecordings),
                opts.verify ? "verified bit-identical" : "not verified");
    if (!report.benchPath.empty()) {
      std::printf("wrote %s\n", report.benchPath.c_str());
    }
  }
  return 0;
}

int seuUsage(std::FILE* to, const char* argv0) {
  std::fprintf(
      to,
      "usage: %s seu (--sim FILE | --bench FILE | --demo) --seq FILE\n"
      "              (--inject FILE     transient campaign spec\n"
      "                                 (flip <node> @ <pattern> [pulse <d>])\n"
      "               | --gen N         generate N seeded injections)\n"
      "              [--seed S          generation seed (default 1)]\n"
      "              [--instants K      cluster generated injections onto at\n"
      "                                 most K distinct instants (default 0 =\n"
      "                                 unclustered; clustering shares replay\n"
      "                                 tails between same-instant strikes)]\n"
      "              [--jobs N          worker threads over injection groups]\n"
      "              [--lane-width N    word-lane batching within a group\n"
      "                                 (power of two in [1, 32])]\n"
      "              [--policy any|definite (default: definite)]\n"
      "              [--naive           from-scratch baseline: one full\n"
      "                                 sequence simulation per injection,\n"
      "                                 no checkpoint]\n"
      "              [--verify          run BOTH modes and fail (exit 1)\n"
      "                                 unless results are bit-identical]\n"
      "              [--checkpoint-budget SIZE  good-machine trace budget\n"
      "                                 (bytes, k/m/g; 0 = unbounded)]\n"
      "              [--quiet]\n"
      "Grades each transient as detected (output mismatch), latent (state\n"
      "still differs at end of sequence) or silent (reconverged). The good\n"
      "machine is recorded once; injections grouped by instant replay only\n"
      "the tail after their strike. Deterministic for fixed inputs across\n"
      "--jobs and --lane-width.\n",
      argv0);
  return to == stderr ? 2 : 0;
}

int runSeu(int argc, char** argv) {
  std::optional<std::string> simFile, benchFile, seqFile, injectFile;
  std::optional<std::uint32_t> genCount;
  std::uint64_t seed = 1;
  std::uint32_t instants = 0;
  bool demo = false, naive = false, verify = false, quiet = false;
  seu::CampaignOptions opts;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") return seuUsage(stdout, argv[0]);
    else if (arg == "--sim") simFile = next();
    else if (arg == "--bench") benchFile = next();
    else if (arg == "--seq") seqFile = next();
    else if (arg == "--demo") demo = true;
    else if (arg == "--inject") injectFile = next();
    else if (arg == "--gen") {
      genCount = parsePositiveCount(next(), "--gen",
                                    std::numeric_limits<std::uint32_t>::max());
    } else if (arg == "--seed") {
      const char* text = next();
      char* end = nullptr;
      errno = 0;
      const unsigned long long v = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-') {
        std::fprintf(stderr, "invalid number '%s' for --seed\n", text);
        return 2;
      }
      seed = v;
    } else if (arg == "--instants") {
      instants = parsePositiveCount(next(), "--instants",
                                    std::numeric_limits<std::uint32_t>::max());
    } else if (arg == "--jobs") {
      opts.jobs = parsePositiveCount(next(), "--jobs", 1u << 16);
    } else if (arg == "--lane-width") {
      opts.laneWidth = parseLaneWidth(next(), "--lane-width");
    } else if (arg == "--policy") {
      const std::string p = next();
      if (p == "any") opts.policy = DetectionPolicy::AnyDifference;
      else if (p == "definite") opts.policy = DetectionPolicy::DefiniteOnly;
      else return seuUsage(stderr, argv[0]);
    } else if (arg == "--naive") naive = true;
    else if (arg == "--verify") verify = true;
    else if (arg == "--checkpoint-budget") {
      opts.checkpointBudgetBytes = parseByteSize(next(), "--checkpoint-budget");
    } else if (arg == "--quiet") quiet = true;
    else return seuUsage(stderr, argv[0]);
  }
  if (!demo && !simFile && !benchFile) return seuUsage(stderr, argv[0]);
  if (!demo && !seqFile) return seuUsage(stderr, argv[0]);
  if (injectFile.has_value() == genCount.has_value()) {
    std::fprintf(stderr,
                 "seu: exactly one of --inject FILE or --gen N is required\n");
    return 2;
  }

  // Malformed inputs (netlist, sequence, campaign spec) are invalid
  // invocations: exit 2, mirroring the main driver.
  Network net;
  TestSequence seq;
  TransientList campaign;
  try {
    if (demo) {
      net = parseSimNetlist(kDemoNetlist);
      seq = parseSequence(net, kDemoSequence);
    } else {
      if (simFile) net = loadSimFile(*simFile);
      else net = expandToCmos(loadBenchFile(*benchFile)).net;
      seq = loadSequenceFile(net, *seqFile);
    }
    if (injectFile) {
      campaign = loadTransientSpecFile(net, *injectFile);
    } else {
      SeuGenOptions g;
      g.seed = seed;
      g.numInjections = *genCount;
      g.numPatterns = seq.size();
      g.maxInstants = instants;
      campaign = generateSeuCampaign(net, g);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  if (!quiet) {
    std::printf("network: %u transistors, %u nodes (%u inputs); sequence: %u "
                "patterns\n",
                net.numTransistors(), net.numNodes(), net.numInputs(),
                seq.size());
    std::printf("campaign: %zu injection(s)%s\n", campaign.size(),
                genCount ? format(" (generated, seed %llu)",
                                  static_cast<unsigned long long>(seed))
                               .c_str()
                         : "");
  }

  try {
    opts.naive = naive;
    const seu::CampaignResult res = runSeuCampaign(net, seq, campaign, opts);

    if (verify) {
      seu::CampaignOptions other = opts;
      other.naive = !naive;
      const seu::CampaignResult ref = runSeuCampaign(net, seq, campaign, other);
      if (ref.checksum() != res.checksum()) {
        std::fprintf(stderr,
                     "seu --verify: MISMATCH — %s=0x%016llx vs %s=0x%016llx\n",
                     naive ? "naive" : "replay",
                     static_cast<unsigned long long>(res.checksum()),
                     naive ? "replay" : "naive",
                     static_cast<unsigned long long>(ref.checksum()));
        return 1;
      }
      if (!quiet) {
        std::printf("verify: replay and naive campaigns bit-identical\n");
      }
    }

    if (!quiet) {
      std::printf("\n%-28s %-9s %s\n", "injection", "outcome", "detected at");
      for (const seu::InjectionResult& r : res.injections) {
        if (r.detectedAtPattern >= 0) {
          std::printf("%-28s %-9s pattern %d\n", r.fault.name.c_str(),
                      seu::outcomeName(r.outcome), r.detectedAtPattern);
        } else {
          std::printf("%-28s %-9s -\n", r.fault.name.c_str(),
                      seu::outcomeName(r.outcome));
        }
      }
    }
    std::printf("\nseu: %zu injection(s): %u detected, %u silent, %u latent "
                "(%u group(s), %s)\n",
                res.injections.size(), res.numDetected, res.numSilent,
                res.numLatent, res.numGroups,
                naive ? "naive" : "checkpoint replay");
    std::printf("time: %.4f s, work: %llu faulty node evaluations, checksum "
                "0x%016llx\n",
                res.totalSeconds,
                static_cast<unsigned long long>(res.totalNodeEvals),
                static_cast<unsigned long long>(res.checksum()));
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--help") == 0) {
    printUsage(stdout, argv[0]);
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "fuzz") == 0) {
    try {
      return runFuzz(argc, argv);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (argc > 1 && std::strcmp(argv[1], "bench") == 0) {
    try {
      return runBench(argc, argv);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    try {
      return runServe(argc, argv);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (argc > 1 && std::strcmp(argv[1], "loadgen") == 0) {
    try {
      return runLoadgen(argc, argv);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (argc > 1 && std::strcmp(argv[1], "seu") == 0) {
    try {
      return runSeu(argc, argv);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  // Any other non-flag first argument is a mistyped subcommand; refuse it
  // instead of misparsing it as a file option.
  if (argc > 1 && argv[1][0] != '-') {
    std::fprintf(stderr, "unknown subcommand '%s' (try %s --help)\n", argv[1],
                 argv[0]);
    return 2;
  }
  std::optional<std::string> simFile, benchFile, seqFile, faultFile, csvFile;
  bool demo = false, noDrop = false, compare = false, quiet = false;
  EngineOptions opts;  // backend/policy/jobs defaults are the library's

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sim") simFile = next();
    else if (arg == "--bench") benchFile = next();
    else if (arg == "--seq") seqFile = next();
    else if (arg == "--faults") faultFile = next();
    else if (arg == "--csv") csvFile = next();
    else if (arg == "--demo") demo = true;
    else if (arg == "--no-drop") noDrop = true;
    else if (arg == "--compare") compare = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--backend") {
      const std::string b = next();
      if (b == "serial") opts.backend = Backend::Serial;
      else if (b == "concurrent") opts.backend = Backend::Concurrent;
      else return usage(argv[0]);
    } else if (arg == "--jobs") {
      opts.jobs = parsePositiveCount(next(), "--jobs", 1u << 16);
    } else if (arg == "--batch-faults") {
      opts.batchFaults =
          parsePositiveCount(next(), "--batch-faults",
                             std::numeric_limits<std::uint32_t>::max());
    } else if (arg == "--lane-width") {
      opts.laneWidth = parseLaneWidth(next(), "--lane-width");
    } else if (arg == "--checkpoint-budget") {
      opts.checkpointBudgetBytes = parseByteSize(next(), "--checkpoint-budget");
    } else if (arg == "--schedule") {
      const char* text = next();
      const auto parsed = sched::parseSchedulePolicy(text);
      if (!parsed) {
        std::fprintf(stderr,
                     "invalid value '%s' for --schedule (want contiguous or "
                     "history)\n",
                     text);
        return 2;
      }
      opts.schedule = *parsed;
    } else if (arg == "--history-file") {
      opts.historyFile = next();
    } else if (arg == "--policy") {
      const std::string p = next();
      if (p == "any") opts.policy = DetectionPolicy::AnyDifference;
      else if (p == "definite") opts.policy = DetectionPolicy::DefiniteOnly;
      else return usage(argv[0]);
    } else if (arg == "--serial") {
      std::fprintf(stderr,
                   "--serial was replaced: use --backend serial, or --compare "
                   "to cross-check both backends\n");
      return 2;
    } else {
      return usage(argv[0]);
    }
  }
  if (!demo && !simFile && !benchFile) return usage(argv[0]);
  if (!demo && (!seqFile || !faultFile)) return usage(argv[0]);

  // Input loading gets its own catch: a malformed netlist, sequence or fault
  // spec is an invalid-invocation error (exit 2, like bad flag values), not a
  // simulation failure. The parsers report line-numbered messages.
  Network net;
  TestSequence seq;
  FaultList faults;
  try {
    if (demo) {
      net = parseSimNetlist(kDemoNetlist);
    } else if (simFile) {
      net = loadSimFile(*simFile);
    } else {
      const GateCircuit gates = loadBenchFile(*benchFile);
      net = expandToCmos(gates).net;
    }
    seq = demo ? parseSequence(net, kDemoSequence)
               : loadSequenceFile(net, *seqFile);
    faults = demo ? parseFaultSpec(net, kDemoFaults)
                  : loadFaultSpecFile(net, *faultFile);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (!quiet) {
    std::printf("network: %u transistors (%u fault devices), %u nodes "
                "(%u inputs)\n",
                net.numTransistors(), net.numFaultDevices(), net.numNodes(),
                net.numInputs());
    std::printf("sequence: %u patterns, %zu output(s); faults: %u\n",
                seq.size(), seq.outputs().size(), faults.size());
  }

  try {
    opts.dropDetected = !noDrop;
    Engine engine(net, faults, opts);
    if (!quiet) {
      std::printf("backend: %s", engine.backendName());
      if (std::string(engine.backendName()) == "sharded") {
        // Report the effective shard count (clamped to the fault count).
        std::printf(" (%u jobs)", std::min(opts.jobs, faults.size()));
      }
      std::printf("\n");
    }
    const FaultSimResult res = engine.run(seq);

    if (!quiet) {
      std::printf("\n%-8s %-10s %-12s %-8s\n", "pattern", "detected",
                  "cumulative", "alive");
      for (const SeriesRow& row : downsample(res, 20)) {
        std::printf("%-8u %-10s %-12u %-8u\n", row.pattern, "",
                    row.cumulativeDetected, row.alive);
      }
    }
    std::printf("\ncoverage: %u / %u (%.2f%%), potential (X) detections: %llu\n",
                res.numDetected, res.numFaults, 100.0 * res.coverage(),
                (unsigned long long)res.potentialDetections);
    // Sharded runs overlap batch work on the wall clock; report the two
    // timing fields separately so neither masquerades as the other.
    if (std::string(engine.backendName()) == "sharded") {
      std::printf("time: %.4f s wall (%.4f s engine CPU), work: %llu node "
                  "evaluations\n",
                  res.totalSeconds, res.totalCpuSeconds,
                  (unsigned long long)res.totalNodeEvals);
    } else {
      std::printf("time: %.4f s, work: %llu node evaluations\n",
                  res.totalSeconds, (unsigned long long)res.totalNodeEvals);
    }

    if (!quiet) {
      std::printf("\nundetected faults:\n");
      unsigned shown = 0;
      for (std::uint32_t i = 0; i < faults.size(); ++i) {
        if (res.detectedAtPattern[i] < 0) {
          std::printf("  %s\n", faults[i].name.c_str());
          if (++shown >= 25) {
            std::printf("  ... (%u total)\n", res.numFaults - res.numDetected);
            break;
          }
        }
      }
      if (shown == 0) std::printf("  (none)\n");
    }

    if (csvFile) {
      writeCsv(res, *csvFile);
      std::printf("per-pattern series written to %s\n", csvFile->c_str());
    }

    if (compare) {
      // Cross-check against the other backend through the same interface.
      EngineOptions other = opts;
      other.backend = opts.backend == Backend::Serial ? Backend::Concurrent
                                                      : Backend::Serial;
      other.jobs = 1;
      Engine reference(net, faults, other);
      const FaultSimResult rres = reference.run(seq);
      std::printf("\n%s reference: %u detected, %.4f s\n",
                  reference.backendName(), rres.numDetected, rres.totalSeconds);
      const GoodRunResult good = engine.runGood(seq);
      const SerialEstimate est =
          estimateSerial(res.detectedAtPattern, seq.size(),
                         good.secondsPerPattern(), good.nodeEvalsPerPattern());
      std::printf("paper-method serial estimate: %.4f s\n", est.seconds);
      bool match = rres.numDetected == res.numDetected;
      for (std::uint32_t i = 0; match && i < faults.size(); ++i) {
        match = rres.detectedAtPattern[i] == res.detectedAtPattern[i];
      }
      std::printf("backend detection agreement: %s\n",
                  match ? "EXACT" : "MISMATCH");
      if (!match) return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
