// fmossim_cli — command-line fault simulator driver.
//
//   fmossim_cli --sim <netlist.sim> --seq <sequence.txt> --faults <spec.txt>
//               [--policy any|definite] [--no-drop] [--csv <file>]
//               [--serial] [--quiet]
//   fmossim_cli --bench <circuit.bench> ...      (ISCAS .bench input)
//   fmossim_cli --demo                           (built-in demo run)
//
// Input formats are documented in src/netlist/sim_format.hpp,
// src/patterns/sequence_io.hpp, and src/faults/fault_spec.hpp.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/concurrent_sim.hpp"
#include "core/estimator.hpp"
#include "core/serial_sim.hpp"
#include "faults/fault_spec.hpp"
#include "netlist/bench_format.hpp"
#include "netlist/gate_expand.hpp"
#include "netlist/sim_format.hpp"
#include "patterns/sequence_io.hpp"
#include "stats/recorder.hpp"

using namespace fmossim;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--sim FILE | --bench FILE | --demo) --seq FILE "
               "--faults FILE\n"
               "          [--policy any|definite] [--no-drop] [--csv FILE] "
               "[--serial] [--quiet]\n",
               argv0);
  return 2;
}

const char* kDemoNetlist = R"(| demo: nMOS inverter chain with a pass gate
input in clk
d n1 Vdd n1
n in n1 Gnd
n clk n1 n2
d out Vdd out
n n2 out Gnd
)";

const char* kDemoSequence = R"(outputs out
pattern init
  set Vdd=1 Gnd=0 in=0 clk=1
pattern p1
  set in=1
pattern p2
  set clk=0
  set in=0
pattern p3
  set clk=1
)";

const char* kDemoFaults = R"(all-node-stuck
all-transistor-stuck
)";

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::string> simFile, benchFile, seqFile, faultFile, csvFile;
  bool demo = false, noDrop = false, runSerial = false, quiet = false;
  DetectionPolicy policy = DetectionPolicy::AnyDifference;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sim") simFile = next();
    else if (arg == "--bench") benchFile = next();
    else if (arg == "--seq") seqFile = next();
    else if (arg == "--faults") faultFile = next();
    else if (arg == "--csv") csvFile = next();
    else if (arg == "--demo") demo = true;
    else if (arg == "--no-drop") noDrop = true;
    else if (arg == "--serial") runSerial = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--policy") {
      const std::string p = next();
      if (p == "any") policy = DetectionPolicy::AnyDifference;
      else if (p == "definite") policy = DetectionPolicy::DefiniteOnly;
      else return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (!demo && !simFile && !benchFile) return usage(argv[0]);
  if (!demo && (!seqFile || !faultFile)) return usage(argv[0]);

  try {
    // Load the network.
    Network net;
    if (demo) {
      net = parseSimNetlist(kDemoNetlist);
    } else if (simFile) {
      net = loadSimFile(*simFile);
    } else {
      const GateCircuit gates = loadBenchFile(*benchFile);
      net = expandToCmos(gates).net;
    }
    if (!quiet) {
      std::printf("network: %u transistors (%u fault devices), %u nodes "
                  "(%u inputs)\n",
                  net.numTransistors(), net.numFaultDevices(), net.numNodes(),
                  net.numInputs());
    }

    const TestSequence seq = demo ? parseSequence(net, kDemoSequence)
                                  : loadSequenceFile(net, *seqFile);
    const FaultList faults = demo ? parseFaultSpec(net, kDemoFaults)
                                  : loadFaultSpecFile(net, *faultFile);
    if (!quiet) {
      std::printf("sequence: %u patterns, %zu output(s); faults: %u\n",
                  seq.size(), seq.outputs().size(), faults.size());
    }

    FsimOptions opts;
    opts.policy = policy;
    opts.dropDetected = !noDrop;
    ConcurrentFaultSimulator sim(net, faults, opts);
    const FaultSimResult res = sim.run(seq);

    if (!quiet) {
      std::printf("\n%-8s %-10s %-12s %-8s\n", "pattern", "detected",
                  "cumulative", "alive");
      for (const SeriesRow& row : downsample(res, 20)) {
        std::printf("%-8u %-10s %-12u %-8u\n", row.pattern, "",
                    row.cumulativeDetected, row.alive);
      }
    }
    std::printf("\ncoverage: %u / %u (%.2f%%), potential (X) detections: %llu\n",
                res.numDetected, res.numFaults, 100.0 * res.coverage(),
                (unsigned long long)res.potentialDetections);
    std::printf("time: %.4f s, work: %llu node evaluations\n", res.totalSeconds,
                (unsigned long long)res.totalNodeEvals);

    if (!quiet) {
      std::printf("\nundetected faults:\n");
      unsigned shown = 0;
      for (std::uint32_t i = 0; i < faults.size(); ++i) {
        if (res.detectedAtPattern[i] < 0) {
          std::printf("  %s\n", faults[i].name.c_str());
          if (++shown >= 25) {
            std::printf("  ... (%u total)\n", res.numFaults - res.numDetected);
            break;
          }
        }
      }
      if (shown == 0) std::printf("  (none)\n");
    }

    if (csvFile) {
      writeCsv(res, *csvFile);
      std::printf("per-pattern series written to %s\n", csvFile->c_str());
    }

    if (runSerial) {
      SerialOptions sopts;
      sopts.policy = policy;
      SerialFaultSimulator serial(net, sopts);
      const SerialRunResult sres = serial.run(seq, faults);
      std::printf("\nserial reference: %u detected, %.4f s (good alone %.4f s)\n",
                  sres.numDetected, sres.faultSeconds, sres.good.totalSeconds);
      const SerialEstimate est = estimateSerial(
          sres.detectedAtPattern, seq.size(), sres.good.secondsPerPattern(),
          sres.good.nodeEvalsPerPattern());
      std::printf("paper-method estimate: %.4f s; concurrent speedup %.1fx\n",
                  est.seconds, sres.faultSeconds / res.totalSeconds);
      bool match = sres.numDetected == res.numDetected;
      for (std::uint32_t i = 0; match && i < faults.size(); ++i) {
        match = sres.detectedAtPattern[i] == res.detectedAtPattern[i];
      }
      std::printf("concurrent/serial detection agreement: %s\n",
                  match ? "EXACT" : "MISMATCH");
      if (!match) return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
