// Non-classical fault injection (paper §3): shorts and opens modeled with
// fault transistors, and transistor stuck-open faults that turn static logic
// into dynamic memory.
//
// The circuit is a precharged pass-transistor bus — the structure where
// these faults matter most (and what the RAM bit lines are).
#include <cstdio>

#include "circuits/demo_circuits.hpp"
#include "api/engine.hpp"
#include "faults/universe.hpp"
#include "switch/logic_sim.hpp"

using namespace fmossim;

namespace {

void banner(const char* s) { std::printf("\n--- %s ---\n", s); }

void showBus(LogicSimulator& sim, const PrechargedBus& bus, const char* when) {
  std::printf("  %-28s busA=%c busB=%c sense=%c\n", when,
              stateChar(sim.state(bus.busA)), stateChar(sim.state(bus.busB)),
              stateChar(sim.state(bus.sense)));
}

void initBus(LogicSimulator& sim, const PrechargedBus& bus) {
  sim.setInput(bus.vdd, State::S1);
  sim.setInput(bus.gnd, State::S0);
  sim.setInput(bus.phiP, State::S0);
  for (unsigned i = 0; i < bus.sources; ++i) {
    sim.setInput(bus.enable[i], State::S0);
    sim.setInput(bus.data[i], State::S0);
  }
  sim.settle();
}

void precharge(LogicSimulator& sim, const PrechargedBus& bus) {
  sim.setInput(bus.phiP, State::S1);
  sim.settle();
  sim.setInput(bus.phiP, State::S0);
  sim.settle();
}

}  // namespace

int main() {
  const PrechargedBus bus = buildPrechargedBus(4);
  std::printf("precharged bus: %u transistors (%u fault devices), %u nodes\n",
              bus.net.numTransistors(), bus.net.numFaultDevices(),
              bus.net.numNodes());

  banner("good circuit");
  {
    LogicSimulator sim(bus.net);
    initBus(sim, bus);
    precharge(sim, bus);
    showBus(sim, bus, "after precharge");
    sim.setInput(bus.enable[3], State::S1);
    sim.setInput(bus.data[3], State::S1);
    sim.settle();
    showBus(sim, bus, "source 3 discharges");
  }

  banner("open-circuit fault: the bus wire breaks in the middle");
  {
    LogicSimulator sim(bus.net);
    // The wire was built as two halves joined by an open fault device
    // (conducting in the good circuit). Breaking it = forcing it off.
    sim.forceTransistor(bus.openDevice, State::S0);
    initBus(sim, bus);
    precharge(sim, bus);
    showBus(sim, bus, "after precharge");
    sim.setInput(bus.enable[0], State::S1);  // source on the A half
    sim.setInput(bus.data[0], State::S1);
    sim.settle();
    showBus(sim, bus, "source 0 discharges only A");
  }

  banner("short-circuit fault: bus shorted to the en0 control line");
  {
    LogicSimulator sim(bus.net);
    sim.forceTransistor(bus.shortDevice, State::S1);
    initBus(sim, bus);
    precharge(sim, bus);
    showBus(sim, bus, "precharge loses to the short");
  }

  banner("stuck-open pull-down: charge trapped on the bus");
  {
    // Stuck-open the enable transistor of source 3: the bus can no longer
    // be discharged by that source and keeps its precharged 1 — dynamic
    // sequential behaviour from a single dead transistor.
    TransId enableT;
    for (const TransId t : bus.net.functionalTransistors()) {
      if (bus.net.transistor(t).gate == bus.enable[3]) enableT = t;
    }
    LogicSimulator sim(bus.net);
    sim.forceTransistor(enableT, State::S0);
    initBus(sim, bus);
    precharge(sim, bus);
    sim.setInput(bus.enable[3], State::S1);
    sim.setInput(bus.data[3], State::S1);
    sim.settle();
    showBus(sim, bus, "source 3 tries to discharge");
  }

  banner("the same faults, concurrently");
  {
    FaultList faults;
    faults.add(Fault::faultDeviceActive(bus.net, bus.openDevice));
    faults.add(Fault::faultDeviceActive(bus.net, bus.shortDevice));
    faults.append(allTransistorStuckFaults(bus.net));
    std::printf("  %u faults in one concurrent run\n", faults.size());

    TestSequence seq;
    seq.addOutput(bus.sense);
    for (unsigned src = 0; src < bus.sources; ++src) {
      Pattern p;
      InputSetting s0;
      s0.set(bus.vdd, State::S1);
      s0.set(bus.gnd, State::S0);
      for (unsigned i = 0; i < bus.sources; ++i) {
        s0.set(bus.enable[i], State::S0);
        s0.set(bus.data[i], State::S0);
      }
      s0.set(bus.phiP, State::S1);
      InputSetting s1;
      s1.set(bus.phiP, State::S0);
      InputSetting s2;
      s2.set(bus.enable[src], State::S1);
      s2.set(bus.data[src], State::S1);
      p.settings = {s0, s1, s2};
      p.label = "drive src " + std::to_string(src);
      seq.addPattern(std::move(p));
    }
    Engine engine(bus.net, faults, {.backend = Backend::Concurrent});
    const FaultSimResult res = engine.run(seq);
    std::printf("  coverage %.1f%% (%u/%u) after %u patterns, %llu potential\n",
                100.0 * res.coverage(), res.numDetected, res.numFaults,
                seq.size(), (unsigned long long)res.potentialDetections);
  }
  return 0;
}
