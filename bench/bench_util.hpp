// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Conventions:
//   * Every harness prints PAPER vs MEASURED lines for the quantities the
//     paper reports; EXPERIMENTS.md collects them.
//   * Detection policy is AnyDifference — the paper's criterion is literal:
//     "Any time the simulation of a faulty circuit produces a result on the
//     output data pin different than the good circuit, the fault is
//     considered detected."
//   * Absolute times are host wall-clock (the paper's are VAX-11/780 CPU
//     seconds); every harness also reports deterministic work units (solver
//     node evaluations) so the shape claims are machine-independent.
//   * Set FMOSSIM_CSV_DIR to also dump the per-pattern series as CSV.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/engine.hpp"
#include "circuits/ram.hpp"
#include "core/estimator.hpp"
#include "core/serial_sim.hpp"
#include "faults/universe.hpp"
#include "patterns/marching.hpp"
#include "perf/scenarios.hpp"
#include "stats/ascii_chart.hpp"
#include "stats/recorder.hpp"
#include "util/strings.hpp"

namespace fmossim::bench {

// The paper's fault universe and engine configuration now live in the
// perf scenario registry (src/perf/scenarios.hpp), the single source of
// truth shared by these harnesses and the BENCH_*.json emitter; the old
// bench-local copies are aliases.
using perf::paperEngineOptions;
using perf::paperFaultUniverse;

inline void banner(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

inline void paperVsMeasured(const char* what, const char* paper,
                            const char* measured) {
  std::printf("  %-44s PAPER: %-18s MEASURED: %s\n", what, paper, measured);
}

/// Dumps per-pattern CSV when FMOSSIM_CSV_DIR is set.
inline void maybeWriteCsv(const FaultSimResult& res, const char* name) {
  const char* dir = std::getenv("FMOSSIM_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  writeCsv(res, path);
  std::printf("  (per-pattern series written to %s)\n", path.c_str());
}

/// Prints the Figure-1-style two-series chart: cumulative detections rising,
/// seconds-per-pattern falling.
inline void printDetectionChart(const FaultSimResult& res) {
  std::vector<double> detects, secs;
  detects.reserve(res.perPattern.size());
  secs.reserve(res.perPattern.size());
  for (const PatternStat& st : res.perPattern) {
    detects.push_back(double(st.cumulativeDetected));
    secs.push_back(st.seconds);
  }
  AsciiChart chart(64, 12);
  std::printf("%s", chart.render(detects, "cumulative faults detected", secs,
                                 "seconds/pattern")
                        .c_str());
}

/// Prints a downsampled per-pattern table.
inline void printSeriesTable(const FaultSimResult& res, std::uint32_t buckets) {
  std::printf("  %8s %14s %14s %10s %8s\n", "pattern", "sec/pattern",
              "evals/pattern", "detected", "alive");
  for (const SeriesRow& row : downsample(res, buckets)) {
    std::printf("  %8u %14.6f %14.0f %10u %8u\n", row.pattern,
                row.secondsPerPattern, row.nodeEvalsPerPattern,
                row.cumulativeDetected, row.alive);
  }
}

}  // namespace fmossim::bench
