// Reproduces the RAM64 -> RAM256 scaling study of §5 (text):
//
//   "Comparing these results to the time required for RAM64, we see that
//    both the time to simulate the good circuit alone and the time for
//    concurrent simulation has scaled up by a factor of 9, while the time
//    for serial simulation has scaled by a factor of 37."
//
// Paper values: good 2.7 -> 25.3 min (x9.4); concurrent 21.9 -> 202 min
// (x9.2); serial 404 -> 15169 min (x37.5). Concurrent time scales as
// (circuit size x patterns); serial as (size x patterns x faults).
//
// This harness additionally runs a TRUE serial simulation of RAM64 to
// validate the paper's estimation method against reality.
#include <cstdio>

#include "bench_util.hpp"

using namespace fmossim;
using namespace fmossim::bench;

namespace {

struct ScalePoint {
  std::string name;
  std::uint32_t transistors = 0;
  std::uint32_t faults = 0;
  std::uint32_t patterns = 0;
  double goodSeconds = 0.0;
  double concurrentSeconds = 0.0;
  double serialSeconds = 0.0;  // estimated
  double goodEvals = 0.0;
  double concurrentEvals = 0.0;
  double serialEvals = 0.0;
  double coverage = 0.0;
};

ScalePoint measure(const perf::Workload& w, const char* name) {
  ScalePoint pt;
  pt.name = name;
  const FaultList& faults = w.faults;
  const TestSequence& seq = w.seq;
  pt.transistors = w.net.numTransistors();
  pt.faults = faults.size();
  pt.patterns = seq.size();

  Engine engine(w.net, faults, paperEngineOptions());
  const GoodRunResult good = engine.runGood(seq);
  pt.goodSeconds = good.totalSeconds;
  pt.goodEvals = double(good.totalNodeEvals);

  const FaultSimResult res = engine.run(seq);
  pt.concurrentSeconds = res.totalSeconds;
  pt.concurrentEvals = double(res.totalNodeEvals);
  pt.coverage = res.coverage();

  const SerialEstimate est =
      estimateSerial(res.detectedAtPattern, seq.size(),
                     good.secondsPerPattern(), good.nodeEvalsPerPattern());
  pt.serialSeconds = est.seconds;
  pt.serialEvals = est.nodeEvals;
  return pt;
}

}  // namespace

int main() {
  banner("Scaling study (paper §5 text): RAM64 -> RAM256");

  // Both scale points are registry scenarios, shared with the BENCH_*.json
  // harness (see src/perf/scenarios.hpp).
  const perf::Workload w64 = perf::buildScenarioWorkload("ram64_seq1");
  const perf::Workload w256 = perf::buildScenarioWorkload("ram256_seq1");
  const ScalePoint p64 = measure(w64, "RAM64");
  const ScalePoint p256 = measure(w256, "RAM256");

  std::printf("  %-8s %11s %8s %9s %12s %14s %14s %9s\n", "circuit",
              "transistors", "faults", "patterns", "good (s)",
              "concurrent (s)", "serial est (s)", "coverage");
  for (const ScalePoint* p : {&p64, &p256}) {
    std::printf("  %-8s %11u %8u %9u %12.3f %14.3f %14.3f %8.1f%%\n",
                p->name.c_str(), p->transistors, p->faults, p->patterns,
                p->goodSeconds, p->concurrentSeconds, p->serialSeconds,
                100.0 * p->coverage);
  }

  const double goodScale = p256.goodEvals / p64.goodEvals;
  const double concScale = p256.concurrentEvals / p64.concurrentEvals;
  const double serialScale = p256.serialEvals / p64.serialEvals;

  std::printf("\n  Scale factors RAM64 -> RAM256 (work units; wall in parens)\n");
  paperVsMeasured("good circuit alone", "x9.4 (2.7->25.3 min)",
                  format("x%.1f (x%.1f wall)", goodScale,
                         p256.goodSeconds / p64.goodSeconds)
                      .c_str());
  paperVsMeasured("concurrent fault simulation", "x9.2 (21.9->202 min)",
                  format("x%.1f (x%.1f wall)", concScale,
                         p256.concurrentSeconds / p64.concurrentSeconds)
                      .c_str());
  paperVsMeasured("serial fault simulation", "x37.5 (404->15169 min)",
                  format("x%.1f (x%.1f wall)", serialScale,
                         p256.serialSeconds / p64.serialSeconds)
                      .c_str());
  paperVsMeasured("RAM256 serial/concurrent", "75x (202 min vs 10.4 days)",
                  format("%.0fx (work units)",
                         p256.serialEvals / p256.concurrentEvals)
                      .c_str());

  // Validate the estimator against TRUE serial simulation on RAM64.
  std::printf("\n  Estimator validation (true serial run, RAM64, all faults)\n");
  SerialOptions sopts;
  sopts.policy = DetectionPolicy::AnyDifference;
  SerialBackend serialBackend(w64.net, w64.faults, sopts);
  serialBackend.run(w64.seq);
  // lastSerialResult() keeps the directly measured good/faulty timing split
  // the shared FaultSimResult folds together.
  const SerialRunResult& real = serialBackend.lastSerialResult();
  const double faultSeconds = real.faultSeconds;
  const std::uint64_t faultEvals = real.faultNodeEvals;
  std::printf("  true serial: %.3f s, %llu evals; estimate: %.3f s, %.0f evals\n",
              faultSeconds, (unsigned long long)faultEvals,
              p64.serialSeconds, p64.serialEvals);
  const double estErr = p64.serialEvals / double(faultEvals);
  std::printf("  estimate/true ratio (work units): %.2f\n", estErr);
  std::printf("  true serial / concurrent (wall): %.1fx\n",
              faultSeconds / p64.concurrentSeconds);

  bool ok = true;
  ok &= serialScale > 2.0 * concScale;  // serial scales much worse
  ok &= concScale > 3.0 && concScale < 30.0;
  ok &= estErr > 0.2 && estErr < 5.0;   // estimator in the right ballpark
  std::printf("\n  Shape checks: %s\n", ok ? "[OK]" : "[FAILED]");
  return ok ? 0 : 1;
}
