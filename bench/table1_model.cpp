// Reproduces Table 1 of the paper: "Transistor State as Function of Gate
// Node State" — printed directly from the implementation's conduction
// function (also pinned by tests/switch/signal_test.cpp).
#include <cstdio>

#include "bench_util.hpp"
#include "switch/signal.hpp"

using namespace fmossim;

int main() {
  bench::banner(
      "Table 1 (Bryant & Schuster, DAC 1985): transistor state as a\n"
      "function of gate node state, regenerated from the implementation");

  std::printf("\n  gate state   n-type   p-type   d-type\n");
  std::printf("  ----------   ------   ------   ------\n");
  for (const State gate : {State::S0, State::S1, State::SX}) {
    std::printf("      %c          %c        %c        %c\n", stateChar(gate),
                stateChar(conductionState(TransistorType::NType, gate)),
                stateChar(conductionState(TransistorType::PType, gate)),
                stateChar(conductionState(TransistorType::DType, gate)));
  }

  std::printf("\n  Paper's table:\n");
  std::printf("      0          0        1        1\n");
  std::printf("      1          1        0        1\n");
  std::printf("      X          X        X        1\n");

  // Verify programmatically so the bench fails loudly on regression.
  const State expected[3][3] = {
      {State::S0, State::S1, State::S1},
      {State::S1, State::S0, State::S1},
      {State::SX, State::SX, State::S1},
  };
  const State gates[3] = {State::S0, State::S1, State::SX};
  const TransistorType types[3] = {TransistorType::NType, TransistorType::PType,
                                   TransistorType::DType};
  for (int g = 0; g < 3; ++g) {
    for (int t = 0; t < 3; ++t) {
      if (conductionState(types[t], gates[g]) != expected[g][t]) {
        std::printf("\nMISMATCH against the paper's Table 1!\n");
        return 1;
      }
    }
  }
  std::printf("\n  All 9 entries match the paper. [OK]\n");
  return 0;
}
