// Microbenchmarks (google-benchmark) for the engine's hot kernels:
// steady-state solves on representative vicinity shapes, vicinity growth,
// state-list (shadow-pointer) operations, and a whole RAM operation.
#include <benchmark/benchmark.h>

#include "circuits/cells.hpp"
#include "circuits/ram.hpp"
#include "core/state_table.hpp"
#include "patterns/ram_ops.hpp"
#include "switch/builder.hpp"
#include "switch/logic_sim.hpp"
#include "switch/solver.hpp"
#include "switch/vicinity.hpp"

namespace fmossim {
namespace {

// A chain vicinity of n members, driven at one end: the typical shape of a
// pass-transistor datapath.
Vicinity makeChainVicinity(std::uint32_t n) {
  Vicinity vic;
  for (std::uint32_t i = 0; i < n; ++i) {
    vic.members.push_back(NodeId(i));
    vic.memberSize.push_back(1);
    vic.memberCharge.push_back(i % 2 ? State::S0 : State::S1);
  }
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    vic.edges.push_back({i, i + 1, 4, true});
  }
  vic.inputEdges.push_back({0, 4, true, State::S1});
  return vic;
}

// A star vicinity: one bus node with n leaves — the bit-line shape.
Vicinity makeStarVicinity(std::uint32_t n) {
  Vicinity vic;
  vic.members.push_back(NodeId(0));  // hub
  vic.memberSize.push_back(2);
  vic.memberCharge.push_back(State::S1);
  for (std::uint32_t i = 1; i <= n; ++i) {
    vic.members.push_back(NodeId(i));
    vic.memberSize.push_back(1);
    vic.memberCharge.push_back(State::SX);
    vic.edges.push_back({0, i, 4, i % 3 != 0});
  }
  vic.inputEdges.push_back({1, 4, true, State::S0});
  return vic;
}

void BM_SolverChain(benchmark::State& state) {
  const SignalDomain domain;
  SteadyStateSolver solver(domain);
  const Vicinity vic = makeChainVicinity(static_cast<std::uint32_t>(state.range(0)));
  std::vector<State> out;
  for (auto _ : state) {
    solver.solve(vic, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * vic.size());
}
BENCHMARK(BM_SolverChain)->Arg(4)->Arg(16)->Arg(64);

void BM_SolverStar(benchmark::State& state) {
  const SignalDomain domain;
  SteadyStateSolver solver(domain);
  const Vicinity vic = makeStarVicinity(static_cast<std::uint32_t>(state.range(0)));
  std::vector<State> out;
  for (auto _ : state) {
    solver.solve(vic, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * vic.size());
}
BENCHMARK(BM_SolverStar)->Arg(8)->Arg(32);

struct PassChainView {
  const Network* net;
  State nodeState(NodeId) const { return State::S1; }
  State conduction(TransId) const { return State::S1; }
  bool isInputNode(NodeId n) const { return net->isInput(n); }
};

void BM_VicinityGrow(benchmark::State& state) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId g = b.addInput("g");
  NodeId prev = b.addInput("d");
  for (int i = 0; i < state.range(0); ++i) {
    const NodeId next = b.addNode("n" + std::to_string(i));
    cells.pass(g, prev, next);
    prev = next;
  }
  const Network net = b.build();
  VicinityBuilder vb(net);
  const PassChainView view{&net};
  Vicinity vic;
  for (auto _ : state) {
    vb.newGeneration();
    vb.grow(view, net.nodeByName("n0"), vic);
    benchmark::DoNotOptimize(vic.members.data());
  }
  state.SetItemsProcessed(state.iterations() * vic.size());
}
BENCHMARK(BM_VicinityGrow)->Arg(8)->Arg(64);

void BM_StateTableScan(benchmark::State& state) {
  // Shadow-pointer style scans: lookup across a node's record list.
  NetworkBuilder b;
  b.addNode("n");
  b.addNode("m");
  const Network net = b.build();
  StateTable table(net);
  const auto records = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t c = 1; c <= records; ++c) {
    table.reconcile(NodeId(0), c * 3, State::S1);
  }
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (std::uint32_t c = 1; c <= records * 3 + 2; ++c) {
      sum += static_cast<std::uint64_t>(table.stateOf(NodeId(0), c));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * (records * 3 + 2));
}
BENCHMARK(BM_StateTableScan)->Arg(8)->Arg(128);

void BM_RamOperation(benchmark::State& state) {
  const RamCircuit ram = buildRam(ram64Config());
  LogicSimulator sim(ram.net);
  std::uint32_t addr = 0;
  for (auto _ : state) {
    const Pattern p = ramOpPattern(
        ram, RamOp::writeOp(addr % ram.config.words(),
                            addr % 2 ? State::S1 : State::S0));
    for (const InputSetting& s : p.settings) {
      sim.applyAssignments(s.span());
    }
    ++addr;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RamOperation);

}  // namespace
}  // namespace fmossim

BENCHMARK_MAIN();
