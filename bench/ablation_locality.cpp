// Ablation: dynamic vicinities vs. static DC-connected partitions.
//
// Paper §4: "This definition exploits the dynamic locality in the network
// where the source and drain of a transistor in the 0 state are considered
// to be electrically isolated. In contrast, earlier switch-level simulators
// [MOSSIM, 1981] exploited only the static locality... where the network was
// partitioned only according to its DC-connected components."
//
// We run the good-circuit simulation of RAM64 under both locality models
// (results are identical; the work is not) and report the cost ratio.
#include <cstdio>

#include "bench_util.hpp"
#include "switch/logic_sim.hpp"

using namespace fmossim;
using namespace fmossim::bench;

namespace {

struct LocalityRun {
  double seconds = 0.0;
  std::uint64_t nodeEvals = 0;
  std::vector<State> finalStates;
};

LocalityRun runGood(const RamCircuit& ram, const TestSequence& seq,
                    bool staticPartitions) {
  SimOptions opts;
  opts.staticPartitions = staticPartitions;
  LogicSimulator sim(ram.net, opts);
  Timer t;
  for (std::uint32_t pi = 0; pi < seq.size(); ++pi) {
    for (const InputSetting& s : seq[pi].settings) {
      sim.applyAssignments(s.span());
    }
  }
  LocalityRun run;
  run.seconds = t.seconds();
  run.nodeEvals = sim.counters().nodeEvals;
  for (std::uint32_t n = 0; n < ram.net.numNodes(); ++n) {
    run.finalStates.push_back(sim.state(NodeId(n)));
  }
  return run;
}

}  // namespace

int main() {
  banner("Ablation: dynamic vicinities vs. static DC partitions (MOSSIM-81)");

  const RamCircuit ram = buildRam(ram64Config());
  const TestSequence seq = ramTestSequence1(ram);

  const LocalityRun dynamic = runGood(ram, seq, false);
  const LocalityRun staticP = runGood(ram, seq, true);

  std::printf("  %-26s %12s %16s\n", "locality model", "total (s)", "node evals");
  std::printf("  %-26s %12.3f %16llu\n", "dynamic vicinities", dynamic.seconds,
              (unsigned long long)dynamic.nodeEvals);
  std::printf("  %-26s %12.3f %16llu\n", "static DC partitions", staticP.seconds,
              (unsigned long long)staticP.nodeEvals);

  const bool identical = dynamic.finalStates == staticP.finalStates;
  const double ratio = double(staticP.nodeEvals) / double(dynamic.nodeEvals);
  std::printf("\n  final states identical: %s\n", identical ? "yes" : "NO");
  std::printf("  dynamic locality saves %.1fx in node evaluations\n", ratio);
  std::printf("  (the paper notes RAMs are a *hard* case for locality: the\n"
              "   bit lines are global busses, so activity is poorly localized\n"
              "   even dynamically)\n");

  bool ok = identical && ratio > 1.2;
  std::printf("\n  Shape checks: %s\n", ok ? "[OK]" : "[FAILED]");
  return ok ? 0 : 1;
}
