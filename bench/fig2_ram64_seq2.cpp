// Reproduces Figure 2: the same RAM64 fault simulation but with the row and
// column marching tests omitted (327 patterns). The paper's headline: the
// *shorter* sequence takes *longer* to fault-simulate (49 min vs 21.9 min),
// because faults that cause widely divergent behaviour stay live deep into
// the run; the concurrent-vs-serial ratio drops from 18 to 9.
//
// "This result shows that the shortest test sequence for a set of faults may
//  not give the shortest simulation time, and that the penalty is worse for
//  concurrent simulation than for serial."
#include <cstdio>

#include "bench_util.hpp"

using namespace fmossim;
using namespace fmossim::bench;

namespace {

struct RunOutcome {
  FaultSimResult res;
  GoodRunResult good;
  SerialEstimate est;
};

RunOutcome runSequence(const Network& net, const FaultList& faults,
                       const TestSequence& seq) {
  Engine engine(net, faults, paperEngineOptions());
  RunOutcome out;
  out.good = engine.runGood(seq);
  out.res = engine.run(seq);
  out.est = estimateSerial(out.res.detectedAtPattern, seq.size(),
                           out.good.secondsPerPattern(),
                           out.good.nodeEvalsPerPattern());
  return out;
}

}  // namespace

int main() {
  banner("Figure 2: RAM64, test sequence 2 (row/column marches omitted)");

  // Both sequences come from the scenario registry ("ram64_seq2" is this
  // figure's workload; "ram64_seq1" provides the contrast run).
  const perf::Workload w2 = perf::buildScenarioWorkload("ram64_seq2");
  const perf::Workload w1 = perf::buildScenarioWorkload("ram64_seq1");
  const TestSequence& seq1 = w1.seq;
  const TestSequence& seq2 = w2.seq;
  std::printf("  sequence 2: %u patterns (paper: 327); sequence 1: %u (407)\n\n",
              seq2.size(), seq1.size());

  const RunOutcome r2 = runSequence(w2.net, w2.faults, seq2);

  printSeriesTable(r2.res, 20);
  std::printf("\n  Figure 2 rendering (x = pattern 0..%u):\n", seq2.size() - 1);
  printDetectionChart(r2.res);

  // The comparison that makes the figure's point needs sequence 1 too.
  const RunOutcome r1 = runSequence(w1.net, w1.faults, seq1);

  const double ratio2 = r2.est.seconds / r2.res.totalSeconds;
  const double ratio1 = r1.est.seconds / r1.res.totalSeconds;
  const double workRatio2 = r2.est.nodeEvals / double(r2.res.totalNodeEvals);
  const double workRatio1 = r1.est.nodeEvals / double(r1.res.totalNodeEvals);

  std::printf("\n  Summary\n");
  std::printf("  detected %u / %u faults (%.1f%%), first 7 patterns detect %u\n",
              r2.res.numDetected, r2.res.numFaults, 100.0 * r2.res.coverage(),
              r2.res.perPattern[6].cumulativeDetected);
  paperVsMeasured("seq 2 concurrent total", "49 min",
                  format("%.3f s (%llu evals)", r2.res.totalSeconds,
                         (unsigned long long)r2.res.totalNodeEvals)
                      .c_str());
  paperVsMeasured("seq 1 concurrent total (for contrast)", "21.9 min",
                  format("%.3f s (%llu evals)", r1.res.totalSeconds,
                         (unsigned long long)r1.res.totalNodeEvals)
                      .c_str());
  paperVsMeasured("seq 2 serial estimate", "448 min",
                  format("%.3f s", r2.est.seconds).c_str());
  paperVsMeasured("seq 2 serial/concurrent ratio", "9",
                  format("%.1f (work units: %.1f)", ratio2, workRatio2).c_str());
  paperVsMeasured("seq 1 serial/concurrent ratio", "18",
                  format("%.1f (work units: %.1f)", ratio1, workRatio1).c_str());
  paperVsMeasured("per-pattern cost, seq2 vs seq1", "higher for seq2",
                  format("%.2fx (work units)",
                         (double(r2.res.totalNodeEvals) / seq2.size()) /
                             (double(r1.res.totalNodeEvals) / seq1.size()))
                      .c_str());

  maybeWriteCsv(r2.res, "fig2_ram64_seq2");

  bool ok = true;
  // The paper's two claims: the concurrent advantage shrinks without the
  // row/column tests, and the mean per-pattern cost rises (work units —
  // machine-noise-free).
  ok &= workRatio2 < workRatio1;
  ok &= (double(r2.res.totalNodeEvals) / seq2.size()) >
        (double(r1.res.totalNodeEvals) / seq1.size());
  std::printf("\n  Shape checks: %s\n", ok ? "[OK]" : "[FAILED]");
  return ok ? 0 : 1;
}
