// Reproduces Figure 1: fault simulation of RAM64 over test sequence 1
// (7 control + 40 row-march + 40 column-march + 320 array-march = 407
// patterns) with the full stuck-at + bit-line-short fault universe.
//
// Paper's reported numbers for this experiment:
//   * 428 faults, 407 patterns; head = first 87 patterns
//   * cost starts ~45 s/pattern, falls sharply once severe faults drop
//   * total 21.9 CPU min; good circuit alone 2.7 min; serial (estimated)
//     404 min; concurrent-vs-serial ratio 18; 71% of time in the head;
//     tail runs ~3x the good-circuit cost with up to ~190 live circuits
#include <cstdio>

#include "bench_util.hpp"

using namespace fmossim;
using namespace fmossim::bench;

int main() {
  banner("Figure 1: RAM64, test sequence 1 (concurrent fault simulation)");

  // The workload is the registry's "ram64_seq1" scenario — the same bytes
  // the BENCH_ram64_seq1.json harness rows measure.
  const perf::Workload w = perf::buildScenarioWorkload("ram64_seq1");
  const Network& net = w.net;
  const FaultList& faults = w.faults;
  const TestSequence& seq = w.seq;
  std::printf("  circuit: %u transistors, %u nodes (paper: 378 / 229)\n",
              net.numTransistors(), net.numNodes());
  std::printf("  faults:  %u (paper: 428)   patterns: %u (paper: 407)\n\n",
              faults.size(), seq.size());

  Engine engine(net, faults, paperEngineOptions());

  // Good-circuit reference run, then the concurrent run.
  const GoodRunResult good = engine.runGood(seq);
  const FaultSimResult res = engine.run(seq);

  printSeriesTable(res, 20);
  std::printf("\n  Figure 1 rendering (x = pattern 0..%u):\n", seq.size() - 1);
  printDetectionChart(res);

  const std::uint32_t kHead = 87;  // control + row march + column march
  const HeadTailSplit split = splitHeadTail(res, kHead);
  const double tailMean = meanSecondsPerPattern(res, kHead, seq.size());
  const double goodMean = good.secondsPerPattern();
  const SerialEstimate est =
      estimateSerial(res.detectedAtPattern, seq.size(), goodMean,
                     good.nodeEvalsPerPattern());

  std::printf("\n  Summary\n");
  std::printf("  detected %u / %u faults (%.1f%% coverage), max live circuits %u\n",
              res.numDetected, res.numFaults, 100.0 * res.coverage(),
              res.maxAlive);
  paperVsMeasured("concurrent total", "21.9 min",
                  format("%.3f s (%llu evals)", res.totalSeconds,
                         (unsigned long long)res.totalNodeEvals)
                      .c_str());
  paperVsMeasured("good circuit alone", "2.7 min",
                  format("%.3f s (%llu evals)", good.totalSeconds,
                         (unsigned long long)good.totalNodeEvals)
                      .c_str());
  paperVsMeasured("serial (paper-method estimate)", "404 min",
                  format("%.3f s", est.seconds).c_str());
  paperVsMeasured("serial / concurrent ratio", "18",
                  format("%.1f (work units: %.1f)", est.seconds / res.totalSeconds,
                         est.nodeEvals / double(res.totalNodeEvals))
                      .c_str());
  paperVsMeasured("concurrent / good ratio", "8.1 (21.9/2.7)",
                  format("%.1f (work units: %.1f)",
                         res.totalSeconds / good.totalSeconds,
                         double(res.totalNodeEvals) / double(good.totalNodeEvals))
                      .c_str());
  paperVsMeasured("time in head (first 87 patterns)", "71%",
                  format("%.0f%%", 100.0 * split.headSecondsFraction()).c_str());
  paperVsMeasured("faults detected in head", "all control/bus faults",
                  format("%u of %u", split.detectedInHead, res.numDetected)
                      .c_str());
  paperVsMeasured("tail cost vs good circuit", "~3x",
                  format("%.1fx", goodMean > 0 ? tailMean / goodMean : 0.0)
                      .c_str());

  maybeWriteCsv(res, "fig1_ram64_seq1");

  // Shape checks: fail loudly if the qualitative result does not hold.
  bool ok = true;
  ok &= res.coverage() > 0.85;
  ok &= split.headSecondsFraction() > 0.4;         // front-loaded cost
  ok &= est.seconds > 3.0 * res.totalSeconds;      // concurrent clearly wins
  ok &= res.perPattern.front().seconds > tailMean; // falling per-pattern cost
  std::printf("\n  Shape checks: %s\n", ok ? "[OK]" : "[FAILED]");
  return ok ? 0 : 1;
}
