// Reproduces Figure 3: average time per pattern vs. number of randomly
// sampled faults for RAM256, for both concurrent simulation (measured) and
// serial simulation (estimated with the paper's own method — the paper also
// estimated its serial times, footnote p. 717).
//
// Paper's claims:
//   * both serial and concurrent grow linearly in the number of faults
//     (the figure's serial axis is scaled 100x),
//   * serial is ~85x slower than concurrent over the full universe,
//   * linearity means the state-list overhead costs nothing, but also that
//     only good-vs-faulty commonality is exploited.
#include <cstdio>

#include "bench_util.hpp"
#include "faults/sampling.hpp"
#include "util/rng.hpp"

using namespace fmossim;
using namespace fmossim::bench;

int main() {
  banner("Figure 3: RAM256, avg time per pattern vs. number of faults");

  // The full-universe point of this sweep is exactly the registry's
  // "ram256_seq1" scenario (the BENCH_ram256_seq1.json workload); the other
  // points sample its fault universe.
  const perf::Workload w = perf::buildScenarioWorkload("ram256_seq1");
  const FaultList& universe = w.faults;
  const TestSequence& seq = w.seq;
  std::printf("  circuit: %u transistors, %u nodes (paper: 1148 / 695)\n",
              w.net.numTransistors(), w.net.numNodes());
  std::printf("  fault universe: %u (paper: 1382)   patterns: %u (paper: 1447)\n\n",
              universe.size(), seq.size());

  // Good-circuit baseline straight off the core serial simulator — no need
  // to copy the RAM256 network into a throwaway Engine for it.
  SerialFaultSimulator serial(w.net);
  const GoodRunResult good = serial.runGood(seq);

  Rng rng(19850625);  // DAC 1985, deterministic sweep
  const double fractions[] = {0.0, 0.125, 0.25, 0.5, 0.75, 1.0};

  std::vector<double> xs, concSecs, serialSecs, concEvals, serialEvals;
  std::printf("  %8s %16s %16s %18s %18s\n", "faults", "conc s/pattern",
              "serial s/pattern", "conc evals/pat", "serial evals/pat");
  for (const double f : fractions) {
    const auto count = static_cast<std::uint32_t>(f * universe.size());
    const FaultList sample = sampleFaults(universe, count, rng);
    Engine engine(w.net, sample, paperEngineOptions());
    const FaultSimResult res = engine.run(seq);
    const SerialEstimate est =
        estimateSerial(res.detectedAtPattern, seq.size(),
                       good.secondsPerPattern(), good.nodeEvalsPerPattern());
    const double cs = res.totalSeconds / seq.size();
    const double ss = est.seconds / seq.size();
    const double ce = double(res.totalNodeEvals) / seq.size();
    const double se = est.nodeEvals / seq.size();
    xs.push_back(double(count));
    concSecs.push_back(cs);
    serialSecs.push_back(ss);
    concEvals.push_back(ce);
    serialEvals.push_back(se);
    std::printf("  %8u %16.6f %16.6f %18.0f %18.0f\n", count, cs, ss, ce, se);
  }

  std::printf("\n  Figure 3 rendering (x = number of faults, linear axes):\n");
  AsciiChart chart(64, 12);
  std::printf("%s", chart.render(serialSecs, "serial s/pattern (estimated)",
                                 concSecs, "concurrent s/pattern")
                        .c_str());

  const LinearFit concFit = fitLine(xs, concEvals);
  const LinearFit serialFit = fitLine(xs, serialEvals);
  const double fullRatio = serialSecs.back() / concSecs.back();
  const double fullWorkRatio = serialEvals.back() / concEvals.back();

  std::printf("\n  Summary\n");
  paperVsMeasured("concurrent growth in #faults", "linear",
                  format("linear, R^2=%.4f (work units)", concFit.r2).c_str());
  paperVsMeasured("serial growth in #faults", "linear",
                  format("linear, R^2=%.4f (work units)", serialFit.r2).c_str());
  paperVsMeasured("serial/concurrent at full universe", "85x",
                  format("%.1fx wall, %.1fx work units", fullRatio,
                         fullWorkRatio)
                      .c_str());
  paperVsMeasured("zero-fault cost = good-circuit cost", "(implicit)",
                  format("%.2fx good", concEvals.front() /
                                           good.nodeEvalsPerPattern())
                      .c_str());

  bool ok = true;
  ok &= concFit.r2 > 0.95 && serialFit.r2 > 0.95;   // linearity
  ok &= fullWorkRatio > 5.0;                        // serial clearly slower
  ok &= concEvals.back() > concEvals.front();       // growing with faults
  std::printf("\n  Shape checks: %s\n", ok ? "[OK]" : "[FAILED]");
  return ok ? 0 : 1;
}
