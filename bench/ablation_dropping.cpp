// Ablation: fault dropping on vs. off (the "tail end effect" of §5).
//
// The paper's performance ratio of 18 for Figure 1 "is gained largely during
// the tail end of the simulation, when many faults can be simulated
// concurrently at little additional cost" — but only because detected faults
// are dropped. Without dropping, every detected fault keeps diverging and
// the cost stays high.
#include <cstdio>

#include "bench_util.hpp"

using namespace fmossim;
using namespace fmossim::bench;

int main() {
  banner("Ablation: fault dropping on/off (RAM64, sequence 1)");

  const RamCircuit ram = buildRam(ram64Config());
  const FaultList faults = paperFaultUniverse(ram);
  const TestSequence seq = ramTestSequence1(ram);

  EngineOptions dropOff = paperEngineOptions();
  dropOff.dropDetected = false;

  Engine engineOn(ram.net, faults, paperEngineOptions());
  const FaultSimResult on = engineOn.run(seq);
  Engine engineOff(ram.net, faults, dropOff);
  const FaultSimResult off = engineOff.run(seq);

  std::printf("  %-22s %14s %16s %14s\n", "configuration", "total (s)",
              "node evals", "final records");
  std::printf("  %-22s %14.3f %16llu %14llu\n", "dropping ON", on.totalSeconds,
              (unsigned long long)on.totalNodeEvals,
              (unsigned long long)on.finalRecords);
  std::printf("  %-22s %14.3f %16llu %14llu\n", "dropping OFF", off.totalSeconds,
              (unsigned long long)off.totalNodeEvals,
              (unsigned long long)off.finalRecords);

  const double speedup = double(off.totalNodeEvals) / double(on.totalNodeEvals);
  std::printf("\n  dropping saves %.1fx in work units (%.1fx wall)\n", speedup,
              off.totalSeconds / on.totalSeconds);
  std::printf("  detections identical: %s (%u vs %u)\n",
              on.numDetected == off.numDetected ? "yes" : "NO",
              on.numDetected, off.numDetected);

  // Per-pattern cost late in the run: with dropping the tail is cheap.
  const double tailOn = meanNodeEvalsPerPattern(on, 300, seq.size());
  const double tailOff = meanNodeEvalsPerPattern(off, 300, seq.size());
  std::printf("  tail (patterns 300+) evals/pattern: ON %.0f vs OFF %.0f (%.1fx)\n",
              tailOn, tailOff, tailOff / tailOn);

  bool ok = true;
  ok &= on.numDetected == off.numDetected;  // dropping must not change results
  ok &= speedup > 1.5;
  ok &= tailOff > 2.0 * tailOn;
  std::printf("\n  Shape checks: %s\n", ok ? "[OK]" : "[FAILED]");
  return ok ? 0 : 1;
}
